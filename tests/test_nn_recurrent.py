"""GRU / LSTM cells and sequence wrappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor
from repro.tensor.gradcheck import check_gradients


class TestGRUCell:
    def test_state_shape_preserved(self, rng):
        cell = nn.GRUCell(3, 5, rng=rng)
        h = cell(Tensor(rng.standard_normal((4, 3))), Tensor(np.zeros((4, 5))))
        assert h.shape == (4, 5)

    def test_extra_leading_dims(self, rng):
        cell = nn.GRUCell(3, 5, rng=rng)
        h = cell(Tensor(rng.standard_normal((2, 4, 3))), Tensor(np.zeros((2, 4, 5))))
        assert h.shape == (2, 4, 5)

    def test_gradients(self, rng):
        cell = nn.GRUCell(3, 4, rng=rng)
        x = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        h = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        check_gradients(lambda x_, h_: cell(x_, h_), [x, h])

    def test_hidden_bounded_by_tanh_dynamics(self, rng):
        cell = nn.GRUCell(2, 4, rng=rng)
        h = Tensor(np.zeros((1, 4)))
        for _ in range(50):
            h = cell(Tensor(rng.standard_normal((1, 2)) * 10), h)
        assert np.all(np.abs(h.numpy()) <= 1.0 + 1e-9)


class TestLSTMCell:
    def test_returns_hidden_and_cell(self, rng):
        cell = nn.LSTMCell(3, 5, rng=rng)
        h, c = cell(Tensor(rng.standard_normal((4, 3))), (Tensor(np.zeros((4, 5))), Tensor(np.zeros((4, 5)))))
        assert h.shape == (4, 5) and c.shape == (4, 5)

    def test_gradients(self, rng):
        cell = nn.LSTMCell(3, 4, rng=rng)
        x = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        h0 = Tensor(np.zeros((2, 4)))
        c0 = Tensor(np.zeros((2, 4)))
        check_gradients(lambda x_: cell(x_, (h0, c0))[0], [x])


class TestSequenceWrappers:
    def test_gru_outputs_every_step(self, rng):
        gru = nn.GRU(3, 5, rng=rng)
        outputs, last = gru(Tensor(rng.standard_normal((2, 7, 3))))
        assert outputs.shape == (2, 7, 5)
        np.testing.assert_array_equal(outputs.numpy()[:, -1], last.numpy())

    def test_gru_accepts_initial_state(self, rng):
        gru = nn.GRU(3, 5, rng=rng)
        x = Tensor(rng.standard_normal((2, 4, 3)))
        h0 = Tensor(rng.standard_normal((2, 5)))
        _, with_state = gru(x, h0)
        _, without = gru(x)
        assert not np.allclose(with_state.numpy(), without.numpy())

    def test_gru_gradient_through_time(self, rng):
        gru = nn.GRU(2, 3, rng=rng)
        x = Tensor(rng.standard_normal((1, 4, 2)), requires_grad=True)
        check_gradients(lambda x_: gru(x_)[1], [x])

    def test_lstm_outputs(self, rng):
        lstm = nn.LSTM(3, 5, rng=rng)
        outputs, (h, c) = lstm(Tensor(rng.standard_normal((2, 6, 3))))
        assert outputs.shape == (2, 6, 5)
        np.testing.assert_array_equal(outputs.numpy()[:, -1], h.numpy())

    def test_sensor_axis_rides_batch(self, rng):
        """(B, N, T, F) histories work by folding N into leading dims."""
        gru = nn.GRU(1, 4, rng=rng)
        outputs, last = gru(Tensor(rng.standard_normal((2, 5, 7, 1))))
        assert outputs.shape == (2, 5, 7, 4)
        assert last.shape == (2, 5, 4)

    def test_order_sensitivity(self, rng):
        """An RNN must be sensitive to input order (unlike bag models)."""
        gru = nn.GRU(1, 4, rng=rng)
        x = rng.standard_normal((1, 6, 1))
        _, forward = gru(Tensor(x))
        _, reversed_ = gru(Tensor(x[:, ::-1].copy()))
        assert not np.allclose(forward.numpy(), reversed_.numpy())
