"""Causal dilated temporal convolutions."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor
from repro.tensor.gradcheck import check_gradients


class TestCausalConv1d:
    def test_invalid_params_raise(self, rng):
        with pytest.raises(ValueError):
            nn.CausalConv1d(2, 2, kernel_size=0, rng=rng)
        with pytest.raises(ValueError):
            nn.CausalConv1d(2, 2, dilation=0, rng=rng)

    def test_length_preserved(self, rng):
        conv = nn.CausalConv1d(3, 5, kernel_size=3, dilation=2, rng=rng)
        assert conv(Tensor(rng.standard_normal((2, 4, 10, 3)))).shape == (2, 4, 10, 5)

    def test_causality(self, rng):
        """Output at time t must not depend on inputs after t."""
        conv = nn.CausalConv1d(1, 1, kernel_size=2, dilation=1, rng=rng)
        x = rng.standard_normal((1, 8, 1))
        base = conv(Tensor(x)).numpy()
        perturbed = x.copy()
        perturbed[0, 5] += 100.0
        out = conv(Tensor(perturbed)).numpy()
        np.testing.assert_allclose(out[0, :5], base[0, :5], atol=1e-12)
        assert not np.allclose(out[0, 5], base[0, 5])

    def test_receptive_field(self, rng):
        conv = nn.CausalConv1d(1, 1, kernel_size=3, dilation=4, rng=rng)
        assert conv.receptive_field == 9

    def test_kernel_one_is_pointwise(self, rng):
        conv = nn.CausalConv1d(3, 2, kernel_size=1, rng=rng)
        x = rng.standard_normal((1, 5, 3))
        expected = x @ conv.weight.numpy()[0] + conv.bias.numpy()
        np.testing.assert_allclose(conv(Tensor(x)).numpy(), expected)

    def test_matches_manual_convolution(self, rng):
        conv = nn.CausalConv1d(1, 1, kernel_size=2, dilation=1, bias=False, rng=rng)
        w = conv.weight.numpy()[:, 0, 0]  # (kernel,)
        x = rng.standard_normal(6)
        out = conv(Tensor(x.reshape(1, 6, 1))).numpy()[0, :, 0]
        padded = np.concatenate([[0.0], x])
        expected = np.array([w[0] * padded[t] + w[1] * padded[t + 1] for t in range(6)])
        np.testing.assert_allclose(out, expected)

    def test_gradients(self, rng):
        conv = nn.CausalConv1d(2, 3, kernel_size=2, dilation=2, rng=rng)
        x = Tensor(rng.standard_normal((1, 6, 2)), requires_grad=True)
        check_gradients(lambda x_: conv(x_), [x])
        check_gradients(lambda w: conv(x.detach()), [conv.weight])

    def test_no_bias(self, rng):
        conv = nn.CausalConv1d(2, 3, bias=False, rng=rng)
        assert conv.bias is None


class TestGatedTemporalConv:
    def test_output_shape(self, rng):
        gated = nn.GatedTemporalConv(3, 5, kernel_size=2, rng=rng)
        assert gated(Tensor(rng.standard_normal((2, 7, 3)))).shape == (2, 7, 5)

    def test_output_bounded_by_tanh_gate(self, rng):
        gated = nn.GatedTemporalConv(3, 5, rng=rng)
        out = gated(Tensor(rng.standard_normal((2, 7, 3)) * 10)).numpy()
        assert np.all(np.abs(out) <= 1.0 + 1e-9)

    def test_gradients(self, rng):
        gated = nn.GatedTemporalConv(2, 3, rng=rng)
        x = Tensor(rng.standard_normal((1, 5, 2)), requires_grad=True)
        check_gradients(lambda x_: gated(x_), [x])
