"""EXPERIMENTS.md splicing tool."""

from __future__ import annotations

import pytest

from repro.harness.summary import collect_results, splice_results


@pytest.fixture
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "table8.txt").write_text("== table8 ==\nMAE 1.0\n")
    (directory / "figure9.txt").write_text("== figure9 ==\npurity 0.9\n")
    return directory


@pytest.fixture
def experiments_md(tmp_path):
    path = tmp_path / "EXPERIMENTS.md"
    path.write_text(
        "## Table VIII\n<!-- TABLE8_MEASURED -->\n\n"
        "## Figure 9\n<!-- FIGURE9_MEASURED -->\n\n"
        "## Table IV\n<!-- TABLE4_MEASURED -->\n"
    )
    return path


class TestCollect:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_results(tmp_path / "nope")

    def test_collects_stems(self, results_dir):
        results = collect_results(results_dir)
        assert set(results) == {"table8", "figure9"}


class TestSplice:
    def test_splices_available_results(self, experiments_md, results_dir):
        count = splice_results(experiments_md, results_dir)
        assert count == 2
        text = experiments_md.read_text()
        assert "MAE 1.0" in text
        assert "purity 0.9" in text
        assert "<!-- TABLE4_MEASURED -->" in text  # missing result left alone

    def test_resplice_replaces_not_duplicates(self, experiments_md, results_dir):
        splice_results(experiments_md, results_dir)
        (results_dir / "table8.txt").write_text("== table8 ==\nMAE 2.0\n")
        splice_results(experiments_md, results_dir)
        text = experiments_md.read_text()
        assert "MAE 2.0" in text
        assert "MAE 1.0" not in text
        assert text.count("<!-- TABLE8_MEASURED -->") == 1
