"""Sensor-correlation attention (paper Eq. 15-16)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sensor_attention import SensorCorrelationAttention
from repro.tensor import Tensor
from repro.tensor.gradcheck import check_gradients


class TestSensorCorrelationAttention:
    def test_output_shape(self, rng):
        layer = SensorCorrelationAttention(4, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 3, 5, 4))))  # (B, W, N, d)
        assert out.shape == (2, 3, 5, 4)

    def test_mixes_information_across_sensors(self, rng):
        layer = SensorCorrelationAttention(4, residual=False, rng=rng)
        h = rng.standard_normal((1, 1, 5, 4))
        base = layer(Tensor(h)).numpy()
        perturbed = h.copy()
        perturbed[0, 0, 3] += 10.0
        out = layer(Tensor(perturbed)).numpy()
        # sensor 0's representation changes because sensor 3 changed
        assert not np.allclose(base[0, 0, 0], out[0, 0, 0])

    def test_residual_preserves_input_contribution(self, rng):
        layer = SensorCorrelationAttention(4, residual=True, rng=rng)
        h = Tensor(rng.standard_normal((1, 2, 5, 4)))
        no_resid = SensorCorrelationAttention(4, residual=False, rng=np.random.default_rng(0))
        out = layer(h).numpy()
        assert not np.allclose(out, h.numpy())
        # residual output = input + mixed; mixed is bounded by value range
        assert np.abs(out).max() <= np.abs(h.numpy()).max() * 2 + 1e-9

    def test_generated_projections_change_output(self, rng):
        layer = SensorCorrelationAttention(3, rng=rng)
        h = Tensor(rng.standard_normal((2, 4, 3)))  # (B, N, d)
        projections = {
            "theta1": Tensor(rng.standard_normal((4, 3, 3))),
            "theta2": Tensor(rng.standard_normal((4, 3, 3))),
        }
        static = layer(h).numpy()
        generated = layer(h, projections).numpy()
        assert not np.allclose(static, generated)

    def test_gradients(self, rng):
        layer = SensorCorrelationAttention(3, rng=rng)
        h = Tensor(rng.standard_normal((1, 4, 3)), requires_grad=True)
        check_gradients(lambda h_: layer(h_), [h])

    def test_attention_is_normalized_over_sources(self, rng):
        """Eq. 15 denominator: per-target scores sum to 1, so a constant
        field stays constant (up to residual)."""
        layer = SensorCorrelationAttention(3, residual=False, rng=rng)
        constant = np.ones((1, 5, 3))
        out = layer(Tensor(constant)).numpy()
        np.testing.assert_allclose(out, np.ones_like(out), atol=1e-9)
