"""Online serving stack: artifacts, ring buffer, batcher, cache, engine."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import nn
from repro.baselines import GRUForecaster
from repro.baselines.classical import PersistenceForecaster
from repro.data import WindowSpec
from repro.data.scalers import StandardScaler
from repro.obs import ListSink
from repro.resilience import CircuitBreaker
from repro.serve import (
    ForecasterArtifact,
    LatencyHistogram,
    MicroBatcher,
    PredictionCache,
    ServeConfig,
    ServingEngine,
    StreamStateStore,
    fingerprint_window,
    load_artifact,
)
from repro.tensor import (
    Tensor,
    inference_mode,
    is_grad_enabled,
    is_inference_mode_enabled,
)
from repro.training import CheckpointError, Trainer, TrainerConfig, latest_checkpoint

HISTORY = 12
HORIZON = 12


def make_scaler(loc=100.0, scale=20.0) -> StandardScaler:
    scaler = StandardScaler()
    scaler.mean, scaler.std = loc, scale
    return scaler


def make_artifact(model=None, history=HISTORY, horizon=HORIZON) -> ForecasterArtifact:
    if model is None:
        model = PersistenceForecaster(history, horizon)
    return ForecasterArtifact(
        model,
        scaler=make_scaler(),
        model_name="test-model",
        history=history,
        horizon=horizon,
    )


def raw_window(rng, sensors=4, history=HISTORY, features=1) -> np.ndarray:
    return 100.0 + 20.0 * rng.standard_normal((sensors, history, features))


# --------------------------------------------------------------------------- #
# inference mode
# --------------------------------------------------------------------------- #
class TestInferenceMode:
    def test_disables_grad_and_flags(self):
        assert not is_inference_mode_enabled()
        with inference_mode():
            assert is_inference_mode_enabled()
            assert not is_grad_enabled()
        assert not is_inference_mode_enabled()
        assert is_grad_enabled()

    def test_nested_restores_outer_state(self):
        with inference_mode():
            with inference_mode():
                assert is_inference_mode_enabled()
            assert is_inference_mode_enabled()
        assert not is_inference_mode_enabled()

    def test_no_graph_is_built(self, rng):
        x = Tensor(rng.standard_normal((3, 3)), requires_grad=True)
        with inference_mode():
            y = (x * 2.0).sum()
        assert not y.requires_grad
        with pytest.raises(RuntimeError):
            y.backward()

    def test_matches_grad_enabled_forward(self, rng):
        model = GRUForecaster(HISTORY, HORIZON, hidden_size=4, predictor_hidden=8, seed=0)
        model.eval()
        x = rng.standard_normal((1, 3, HISTORY, 1))
        expected = model(Tensor(x)).numpy()
        with inference_mode():
            fast = model(Tensor(x)).numpy()
        np.testing.assert_array_equal(fast, expected)

    def test_mode_is_thread_local(self, rng):
        # A serving thread holding inference_mode open (as the MicroBatcher
        # worker does mid-forward) must not switch off graph recording for a
        # concurrently training thread — the fleet serves and fine-tunes in
        # the same process.
        entered = threading.Event()
        release = threading.Event()
        observed = {}

        def hold_inference_mode():
            with inference_mode():
                observed["inference"] = is_inference_mode_enabled()
                observed["grad"] = is_grad_enabled()
                entered.set()
                release.wait(timeout=10.0)

        worker = threading.Thread(target=hold_inference_mode, daemon=True)
        worker.start()
        try:
            assert entered.wait(timeout=10.0)
            # worker saw its own mode...
            assert observed == {"inference": True, "grad": False}
            # ...but this thread still records a graph and can backprop
            assert not is_inference_mode_enabled()
            assert is_grad_enabled()
            x = Tensor(rng.standard_normal((3, 3)), requires_grad=True)
            loss = (x * 2.0).sum()
            assert loss.requires_grad
            loss.backward()
            np.testing.assert_allclose(x.grad, 2.0 * np.ones((3, 3)))
        finally:
            release.set()
            worker.join(timeout=10.0)
        assert is_grad_enabled() and not is_inference_mode_enabled()


# --------------------------------------------------------------------------- #
# latency metrics
# --------------------------------------------------------------------------- #
class TestLatencyHistogram:
    def test_quantiles_on_known_data(self):
        histogram = LatencyHistogram()
        for ms in range(1, 101):  # 1..100 ms
            histogram.record(ms / 1e3)
        summary = histogram.summary()
        assert summary["count"] == 100
        assert 45.0 <= summary["p50_ms"] <= 55.0
        assert 90.0 <= summary["p95_ms"] <= 99.0
        assert summary["p99_ms"] <= 100.0

    def test_bounded_reservoir(self):
        histogram = LatencyHistogram(capacity=8)
        for _ in range(100):
            histogram.record(0.001)
        assert histogram.summary()["count"] == 100  # count is exact, storage bounded


# --------------------------------------------------------------------------- #
# streaming state store
# --------------------------------------------------------------------------- #
class TestStreamStateStore:
    def test_cold_stream_shorter_than_window(self):
        store = StreamStateStore(num_sensors=2, window=4)
        store.ingest(np.array([1.0, 10.0]))
        assert not store.ready
        window, mask = store.window()
        assert window.shape == (2, 4, 1)
        assert np.isfinite(window).all()  # prefix imputed, not NaN
        assert mask.sum() == 2  # only the single observed tick is real

    def test_window_is_chronological(self):
        store = StreamStateStore(num_sensors=1, window=3)
        for value in [1.0, 2.0, 3.0, 4.0]:  # wraps the ring once
            store.ingest(np.array([value]))
        window, _ = store.window()
        np.testing.assert_array_equal(window[0, :, 0], [2.0, 3.0, 4.0])
        assert store.ready

    def test_partial_tick_imputes_missing_sensors(self):
        store = StreamStateStore(num_sensors=3, window=2)
        store.ingest(np.array([1.0, 2.0, 3.0]))
        store.ingest(np.array([20.0]), sensor_ids=[1])  # only sensor 1 reports
        window, mask = store.window()
        assert np.isfinite(window).all()
        np.testing.assert_array_equal(window[1, :, 0], [2.0, 20.0])
        np.testing.assert_array_equal(mask[:, 1, 0], [0.0, 1.0, 0.0])

    def test_nan_observation_is_filled(self):
        store = StreamStateStore(num_sensors=1, window=2)
        store.ingest(np.array([5.0]))
        store.ingest(np.array([np.nan]))  # sensor sent garbage
        window, mask = store.window()
        np.testing.assert_array_equal(window[0, :, 0], [5.0, 5.0])  # last-value fill
        assert mask[0, 1, 0] == 0.0

    def test_version_is_monotone(self):
        store = StreamStateStore(num_sensors=1, window=2)
        versions = [store.ingest(np.array([float(i)])) for i in range(5)]
        assert versions == sorted(versions) and len(set(versions)) == 5

    def test_validation(self):
        store = StreamStateStore(num_sensors=2, window=3)
        with pytest.raises(ValueError):
            store.ingest(np.zeros(3))  # wrong sensor count
        with pytest.raises(IndexError):
            store.ingest(np.zeros(1), sensor_ids=[7])


# --------------------------------------------------------------------------- #
# prediction cache
# --------------------------------------------------------------------------- #
class TestPredictionCache:
    def test_hit_after_put(self, rng):
        cache = PredictionCache()
        window = raw_window(rng)
        key = cache.make_key("m1", window, HORIZON)
        assert cache.get(key) is None
        cache.put(key, np.ones(3), data_version=1)
        np.testing.assert_array_equal(cache.get(key), np.ones(3))
        assert cache.hit_rate == 0.5

    def test_key_distinguishes_model_window_horizon(self, rng):
        cache = PredictionCache()
        window = raw_window(rng)
        base = cache.make_key("m1", window, 12)
        assert cache.make_key("m2", window, 12) != base
        assert cache.make_key("m1", window, 6) != base
        assert cache.make_key("m1", window + 1.0, 12) != base
        assert cache.make_key("m1", window, 12) == base  # deterministic

    def test_ttl_expiry(self, rng):
        clock = [0.0]
        cache = PredictionCache(ttl_seconds=10.0, clock=lambda: clock[0])
        key = cache.make_key("m", raw_window(rng), HORIZON)
        cache.put(key, np.ones(2))
        clock[0] = 9.9
        assert cache.get(key) is not None
        clock[0] = 10.1
        assert cache.get(key) is None  # expired

    def test_invalidated_by_new_data(self, rng):
        cache = PredictionCache()
        stale = cache.make_key("m", raw_window(rng), HORIZON)
        fresh = cache.make_key("m", raw_window(rng), HORIZON)
        cache.put(stale, np.ones(2), data_version=3)
        cache.put(fresh, np.ones(2), data_version=5)
        dropped = cache.invalidate_before(5)
        assert dropped == 1
        assert cache.get(stale) is None
        assert cache.get(fresh) is not None

    def test_invalidation_scoped_to_model_id(self, rng):
        cache = PredictionCache()
        tenant_a = cache.make_key("city-a", raw_window(rng), HORIZON)
        tenant_b = cache.make_key("city-b", raw_window(rng), HORIZON)
        cache.put(tenant_a, np.ones(2), data_version=1)
        cache.put(tenant_b, np.ones(2), data_version=1)
        dropped = cache.invalidate_before(5, model_id="city-a")
        assert dropped == 1
        assert cache.get(tenant_a) is None  # the named tenant's entry went
        assert cache.get(tenant_b) is not None  # the other tenant's survived

    def test_invalidation_without_model_id_keeps_old_behaviour(self, rng):
        cache = PredictionCache()
        for tenant in ("city-a", "city-b"):
            cache.put(cache.make_key(tenant, raw_window(rng), HORIZON), np.ones(2), 1)
        assert cache.invalidate_before(5) == 2  # None = evict across tenants

    def test_lru_eviction(self, rng):
        cache = PredictionCache(capacity=2)
        keys = [cache.make_key("m", raw_window(rng), h) for h in (1, 2, 3)]
        cache.put(keys[0], np.zeros(1))
        cache.put(keys[1], np.zeros(1))
        cache.get(keys[0])  # touch: key 1 becomes the LRU entry
        cache.put(keys[2], np.zeros(1))
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None

    def test_fingerprint_sensitive_to_every_element(self, rng):
        window = raw_window(rng)
        bumped = window.copy()
        bumped[-1, -1, 0] += 1e-9
        assert fingerprint_window(window) != fingerprint_window(bumped)


# --------------------------------------------------------------------------- #
# micro-batcher
# --------------------------------------------------------------------------- #
class TestMicroBatcher:
    def test_single_request_roundtrip(self, rng):
        with MicroBatcher(lambda batch: batch * 2.0, max_wait_s=0.0) as batcher:
            window = raw_window(rng)
            result = batcher.submit(window).result(timeout=5.0)
            np.testing.assert_array_equal(result, window * 2.0)

    def test_coalesces_concurrent_requests(self, rng):
        release = threading.Event()
        batch_sizes = []

        def slow_forward(batch):
            release.wait(timeout=5.0)
            batch_sizes.append(batch.shape[0])
            return batch

        with MicroBatcher(slow_forward, max_batch_size=8, max_wait_s=0.05) as batcher:
            futures = [batcher.submit(raw_window(rng)) for _ in range(5)]
            release.set()
            for future in futures:
                future.result(timeout=5.0)
        # the concurrent requests ran in fewer, larger batches
        assert max(batch_sizes) > 1
        assert batcher.batches_run < batcher.requests_seen
        assert sum(batch_sizes) == 5

    def test_results_routed_to_their_requests(self, rng):
        with MicroBatcher(lambda batch: batch + 1.0, max_batch_size=4, max_wait_s=0.05) as batcher:
            windows = [raw_window(rng) for _ in range(6)]
            futures = [batcher.submit(w) for w in windows]
            for window, future in zip(windows, futures):
                np.testing.assert_array_equal(future.result(timeout=5.0), window + 1.0)

    def test_forward_error_fails_all_requests(self, rng):
        def broken(batch):
            raise RuntimeError("model exploded")

        with MicroBatcher(broken, max_wait_s=0.0) as batcher:
            future = batcher.submit(raw_window(rng))
            with pytest.raises(RuntimeError, match="model exploded"):
                future.result(timeout=5.0)

    def test_rejects_after_close(self, rng):
        batcher = MicroBatcher(lambda batch: batch)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(raw_window(rng))


# --------------------------------------------------------------------------- #
# circuit breaker
# --------------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_opens_after_threshold_and_probes_after_cooldown(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=5.0, clock=lambda: clock[0])
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.allow() and not breaker.is_open
        breaker.record_failure()
        assert breaker.is_open and not breaker.allow()
        clock[0] = 5.0
        assert breaker.allow()  # half-open probe
        breaker.record_success()
        assert not breaker.is_open and breaker.allow()

    def test_failed_probe_restarts_cooldown(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 5.0
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        clock[0] = 9.0
        assert not breaker.allow()
        assert breaker.snapshot()["opens"] == 1

    def test_transitions_reported_closed_open_half_open_closed(self):
        clock, edges = [0.0], []
        breaker = CircuitBreaker(
            failure_threshold=2,
            cooldown_s=5.0,
            clock=lambda: clock[0],
            on_transition=lambda a, b: edges.append((a, b)),
        )
        breaker.record_failure()
        assert edges == []  # below threshold: still closed, no edge
        breaker.record_failure()
        clock[0] = 5.0
        breaker.allow()  # half-open probe
        breaker.record_success()
        assert edges == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_failed_probe_transitions_half_open_to_open(self):
        clock, edges = [0.0], []
        breaker = CircuitBreaker(
            failure_threshold=1,
            cooldown_s=5.0,
            clock=lambda: clock[0],
            on_transition=lambda a, b: edges.append((a, b)),
        )
        breaker.record_failure()
        clock[0] = 5.0
        breaker.allow()
        breaker.record_failure()
        assert edges == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "open"),
        ]
        assert breaker.state == "open"

    def test_snapshot_carries_state_and_callback_errors_are_swallowed(self):
        def explode(a, b):
            raise RuntimeError("observer crashed")

        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.0, on_transition=explode)
        assert breaker.snapshot()["state"] == "closed"
        breaker.record_failure()  # callback raises; circuit must still open
        assert breaker.snapshot()["state"] == "open"
        assert breaker.is_open

    def test_repeated_states_emit_no_duplicate_edges(self):
        edges = []
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=1e9, on_transition=lambda a, b: edges.append((a, b))
        )
        breaker.record_success()  # closed -> closed: no edge
        breaker.record_failure()
        breaker.record_failure()  # open -> open: no extra edge
        assert edges == [("closed", "open")]

    def test_engine_emits_circuit_transition_events(self, rng):
        sink = ListSink()
        engine = make_engine(rng, sink=sink, failure_threshold=1, cooldown_s=30.0)
        hook = engine.artifact.model.register_forward_pre_hook(
            lambda module, args: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        try:
            window = raw_window(rng)
            assert engine.forecast(window).source == "fallback"
        finally:
            hook.remove()
            engine.close()
        transitions = sink.of_type("circuit_transition")
        assert [(e["from"], e["to"]) for e in transitions] == [("closed", "open")]
        assert transitions[0]["model_id"] == engine.artifact.model_id


# --------------------------------------------------------------------------- #
# forecaster artifact
# --------------------------------------------------------------------------- #
class TestForecasterArtifact:
    def test_predict_matches_manual_forward(self, rng):
        model = GRUForecaster(HISTORY, HORIZON, hidden_size=4, predictor_hidden=8, seed=0)
        scaler = make_scaler()
        artifact = ForecasterArtifact(
            model, scaler=scaler, model_name="gru", history=HISTORY, horizon=HORIZON
        )
        window = raw_window(rng, sensors=3)
        expected = scaler.inverse_transform(
            model(Tensor(scaler.transform(window[None]))).numpy()
        )[0]
        np.testing.assert_allclose(artifact.predict(window), expected)

    def test_freeze_disables_gradients_and_training(self):
        model = GRUForecaster(HISTORY, HORIZON, hidden_size=4, predictor_hidden=8, seed=0)
        model.train()
        artifact = make_artifact(model)
        assert not artifact.model.training
        assert all(not p.requires_grad for p in artifact.model.parameters())

    def test_dropout_model_is_deterministic(self, rng):
        class DropoutForecaster(nn.Module):
            def __init__(self):
                super().__init__()
                self.dropout = nn.Dropout(0.5, rng=np.random.default_rng(0))
                self.inner = PersistenceForecaster(HISTORY, HORIZON)

            def forward(self, x):
                return self.inner(self.dropout(x))

        artifact = make_artifact(DropoutForecaster())
        window = raw_window(rng)
        np.testing.assert_array_equal(artifact.predict(window), artifact.predict(window))

    def test_batched_and_single_windows(self, rng):
        artifact = make_artifact()
        single = raw_window(rng)
        batched = np.stack([single, single + 1.0])
        out_single = artifact.predict(single)
        out_batched = artifact.predict(batched)
        assert out_single.shape == (4, HORIZON, 1)
        assert out_batched.shape == (2, 4, HORIZON, 1)
        np.testing.assert_allclose(out_batched[0], out_single)

    def test_rejects_wrong_history_length(self, rng):
        artifact = make_artifact()
        with pytest.raises(ValueError, match="window"):
            artifact.predict(raw_window(rng, history=HISTORY + 1))

    def test_save_load_roundtrip_with_model(self, tmp_path, rng):
        model = GRUForecaster(HISTORY, HORIZON, hidden_size=4, predictor_hidden=8, seed=0)
        artifact = make_artifact(model)
        path = artifact.save(tmp_path / "artifact.npz")
        clone_model = GRUForecaster(HISTORY, HORIZON, hidden_size=4, predictor_hidden=8, seed=9)
        reloaded = load_artifact(path, model=clone_model)
        assert reloaded.model_id == artifact.model_id
        window = raw_window(rng, sensors=3)
        np.testing.assert_allclose(reloaded.predict(window), artifact.predict(window))

    def test_truncated_artifact_raises_checkpoint_error(self, tmp_path):
        path = make_artifact().save(tmp_path / "artifact.npz")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CheckpointError, match="corrupt"):
            load_artifact(path, model=PersistenceForecaster(HISTORY, HORIZON))

    def test_foreign_archive_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, weights=np.zeros(3))
        with pytest.raises(CheckpointError):
            load_artifact(path, model=PersistenceForecaster(HISTORY, HORIZON))

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_artifact(tmp_path / "nope.npz")

    def test_from_training_checkpoint(self, tmp_path, tiny_dataset):
        model = GRUForecaster(HISTORY, HORIZON, hidden_size=8, predictor_hidden=32, seed=0)
        trainer = Trainer(
            model,
            tiny_dataset,
            WindowSpec(HISTORY, HORIZON),
            TrainerConfig(
                epochs=2,
                batch_size=16,
                max_batches_per_epoch=4,
                eval_batches=2,
                seed=0,
                checkpoint_dir=tmp_path,
            ),
        )
        trainer.fit()
        checkpoint = latest_checkpoint(tmp_path)
        assert checkpoint is not None
        fresh = GRUForecaster(HISTORY, HORIZON, hidden_size=8, predictor_hidden=32, seed=5)
        artifact = ForecasterArtifact.from_training_checkpoint(
            checkpoint,
            fresh,
            scaler=tiny_dataset.scaler,
            model_name="gru",
            history=HISTORY,
            horizon=HORIZON,
        )
        window = tiny_dataset.test_raw[:, :HISTORY, :]
        forecast = artifact.predict(window)
        assert forecast.shape == (tiny_dataset.num_sensors, HORIZON, 1)
        assert np.isfinite(forecast).all()


# --------------------------------------------------------------------------- #
# serving engine
# --------------------------------------------------------------------------- #
def make_engine(rng, **config_overrides) -> ServingEngine:
    defaults = dict(max_wait_ms=1.0, cooldown_s=0.02, failure_threshold=2)
    defaults.update(config_overrides)
    engine = ServingEngine(make_artifact(), num_sensors=4, config=ServeConfig(**defaults))
    for _ in range(HISTORY):
        engine.ingest(100.0 + 20.0 * rng.standard_normal(4))
    return engine


class TestServingEngine:
    def test_model_then_cache(self, rng):
        with make_engine(rng) as engine:
            first = engine.forecast()
            second = engine.forecast()
        assert first.source == "model" and first.ok
        assert second.source == "cache"
        np.testing.assert_array_equal(first.forecast, second.forecast)

    def test_forecast_is_last_value_for_persistence(self, rng):
        with make_engine(rng) as engine:
            window, _ = engine.store.window()
            result = engine.forecast()
        expected = np.repeat(window[:, -1:, :], HORIZON, axis=1)
        np.testing.assert_allclose(result.forecast, expected)

    def test_ingest_invalidates_cache(self, rng):
        with make_engine(rng) as engine:
            engine.forecast()
            engine.ingest(100.0 + 20.0 * rng.standard_normal(4))
            after = engine.forecast()
        assert after.source == "model"  # stale entry was dropped

    def test_fallback_on_model_failure_then_circuit_opens(self, rng):
        sink = ListSink()
        with make_engine(rng, sink=sink) as engine:
            handle = engine.artifact.model.register_forward_pre_hook(
                lambda module, args: (_ for _ in ()).throw(RuntimeError("boom"))
            )
            try:
                windows = [raw_window(rng) for _ in range(3)]  # distinct: bypass the cache
                results = [engine.forecast(w) for w in windows]
            finally:
                handle.remove()
        assert all(r.source == "fallback" for r in results)
        assert "boom" in results[0].reason
        assert results[-1].reason == "circuit_open"  # threshold=2 opened the circuit
        # fallback is the persistence forecast of the requested window
        np.testing.assert_allclose(
            results[0].forecast, np.repeat(windows[0][:, -1:, :], HORIZON, axis=1)
        )
        assert len(sink.of_type("fallback")) == 3

    def test_recovers_after_circuit_cooldown(self, rng):
        with make_engine(rng) as engine:
            handle = engine.artifact.model.register_forward_pre_hook(
                lambda module, args: (_ for _ in ()).throw(RuntimeError("boom"))
            )
            try:
                for _ in range(2):
                    engine.forecast(raw_window(rng))
            finally:
                handle.remove()
            assert engine.circuit.is_open
            time.sleep(engine.config.cooldown_s + 0.01)
            recovered = engine.forecast(raw_window(rng))
        assert recovered.source == "model"
        assert not engine.circuit.is_open

    def test_deadline_overrun_falls_back(self, rng):
        with make_engine(rng, deadline_ms=1.0) as engine:
            release = threading.Event()
            original = engine.artifact.predict

            def stalled(batch):
                release.wait(timeout=5.0)
                return original(batch)

            engine.batcher.forward = stalled
            result = engine.forecast()
            release.set()
        assert result.source == "fallback"
        assert result.reason == "deadline_overrun"

    def test_stats_and_snapshot(self, rng):
        with make_engine(rng) as engine:
            engine.forecast()
            engine.forecast()
            snapshot = engine.snapshot()
        assert snapshot["cache_hit_rate"] == 0.5
        assert snapshot["requests"] == 2
        assert snapshot["latency"]["count"] == 2
        assert snapshot["circuit"]["open"] is False
        slo = engine.stats.slo_report(p95_ms=60_000.0)
        assert slo["ok"]
        failed = engine.stats.slo_report(p95_ms=1e-9)
        assert not failed["ok"]

    def test_slo_report_stamped_with_artifact_identity(self, rng):
        artifact = make_artifact()
        artifact.metadata["registry"] = {"model_id": "city-a", "version": 4}
        with ServingEngine(
            artifact, num_sensors=4, config=ServeConfig(max_wait_ms=0.5)
        ) as engine:
            for _ in range(HISTORY):
                engine.ingest(100.0 + 20.0 * rng.standard_normal(4))
            engine.forecast()
            slo = engine.stats.slo_report(p95_ms=60_000.0)
            snapshot = engine.snapshot()
        assert slo["model_id"] == artifact.model_id
        assert slo["artifact_version"] == 4
        assert slo["executor_kind"] == "inference"
        assert snapshot["artifact_version"] == 4
        assert snapshot["executor_kind"] == "inference"

    def test_unregistered_artifact_has_no_version(self, rng):
        with make_engine(rng) as engine:
            assert engine.stats.slo_report()["artifact_version"] is None
            assert engine.artifact.registry_version is None

    def test_engines_share_a_store_and_invalidate_independently(self, rng):
        store = StreamStateStore(num_sensors=4, window=HISTORY)
        primary = ServingEngine(
            make_artifact(), num_sensors=4, config=ServeConfig(max_wait_ms=0.5), store=store
        )
        shadow = ServingEngine(
            make_artifact(GRUForecaster(HISTORY, HORIZON, hidden_size=4, predictor_hidden=8)),
            num_sensors=4,
            config=ServeConfig(max_wait_ms=0.5),
            store=store,
        )
        try:
            for _ in range(HISTORY):
                version = store.ingest(100.0 + 20.0 * rng.standard_normal(4))
            assert primary.store is shadow.store
            assert primary.forecast().source == "model"
            assert shadow.forecast().source == "model"  # same window, own cache
            assert primary.forecast().source == "cache"
            # the fleet hook: one tick, every arm invalidated by version
            version = store.ingest(100.0 + 20.0 * rng.standard_normal(4))
            assert primary.invalidate_stale(version) == 1
            assert shadow.invalidate_stale(version) == 1
            assert primary.forecast().source == "model"  # stale entry gone
        finally:
            primary.close()
            shadow.close()

    def test_shared_store_shape_mismatch_is_rejected(self):
        store = StreamStateStore(num_sensors=3, window=HISTORY)
        with pytest.raises(ValueError, match=r"shared store has shape \(N=3"):
            ServingEngine(make_artifact(), num_sensors=4, store=store)
