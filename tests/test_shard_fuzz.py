"""Property-based sharding fuzzer: round-trips and the all-reduce identity.

Companion to ``test_tensor_fuzz.py``, aimed at the sharding layer instead
of the op registry.  Each case draws a random batch geometry from a seeded
generator — ragged sensor counts not divisible by the shard count, K=1,
K > N, NaN-masked targets — and asserts two properties the sharded
execution path (:class:`repro.exec.ShardedExecutor`) is built on:

* **Bit-exact reassembly** — ``unshard_sensors(shard_sensors(...))`` and
  ``concatenate(shard_batch(...))`` reproduce the original arrays exactly
  (``equal_nan=True`` for masked targets: NaN positions ride along
  untouched), and the shard layout matches :func:`sensor_shard_ranges`.
* **Gradient equality** — recombining per-shard losses/gradients with the
  finite-target-count all-reduce (:func:`repro.optim.all_reduce_gradients`)
  reproduces the serial loss and every serial gradient to 1e-12, on both
  SimST encoders, with and without NaN-masked targets.  This is the
  in-process statement of the exactness contract the multiprocess
  executor relies on (DESIGN.md §15).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SimSTForecaster
from repro.core.loss import STWALoss
from repro.optim import all_reduce_gradients
from repro.parallel import (
    sensor_shard_ranges,
    shard_batch,
    shard_sensors,
    unshard_sensors,
)
from repro.tensor import Tensor

ROUND_TRIP_CASES = 60
GRAD_ATOL = 1e-12


def _draw_batch(rng: np.random.Generator):
    """One random (x, y, n_shards) geometry, NaN-masked y half the time."""
    batch = int(rng.integers(1, 6))
    sensors = int(rng.integers(1, 18))
    history = int(rng.integers(1, 7))
    horizon = int(rng.integers(1, 7))
    features = int(rng.integers(1, 4))
    n_shards = int(rng.integers(1, sensors + 5))  # includes K=1 and K > N
    x = rng.standard_normal((batch, sensors, history, features))
    y = rng.standard_normal((batch, sensors, horizon, features))
    if rng.random() < 0.5:
        mask = rng.random(y.shape) < rng.uniform(0.05, 0.5)
        y = np.where(mask, np.nan, y)
    return x, y, n_shards


# --------------------------------------------------------------------- #
# round-trips: shard -> unshard is the identity, bit for bit
# --------------------------------------------------------------------- #
class TestRoundTrips:
    @pytest.mark.parametrize("case", range(ROUND_TRIP_CASES))
    def test_sensor_round_trip(self, case):
        rng = np.random.default_rng(1000 + case)
        x, y, n_shards = _draw_batch(rng)
        pieces = shard_sensors(x, y, n_shards)
        ranges = sensor_shard_ranges(x.shape[1], n_shards)
        assert len(pieces) == len(ranges) == min(n_shards, x.shape[1])
        for (xs, ys), (start, stop) in zip(pieces, ranges):
            assert xs.shape[1] == ys.shape[1] == stop - start
        assert np.array_equal(unshard_sensors([xs for xs, _ in pieces]), x)
        assert np.array_equal(
            unshard_sensors([ys for _, ys in pieces]), y, equal_nan=True
        )

    @pytest.mark.parametrize("case", range(ROUND_TRIP_CASES))
    def test_batch_round_trip(self, case):
        rng = np.random.default_rng(2000 + case)
        x, y, n_shards = _draw_batch(rng)
        pieces = shard_batch(x, y, n_shards)
        assert len(pieces) == min(n_shards, len(x))
        assert all(len(xs) == len(ys) > 0 for xs, ys in pieces)
        assert np.array_equal(np.concatenate([xs for xs, _ in pieces]), x)
        assert np.array_equal(
            np.concatenate([ys for _, ys in pieces]), y, equal_nan=True
        )

    @pytest.mark.parametrize("case", range(ROUND_TRIP_CASES))
    def test_range_partition(self, case):
        """Ranges tile [0, N) contiguously with sizes differing by <= 1."""
        rng = np.random.default_rng(3000 + case)
        num_sensors = int(rng.integers(1, 40))
        n_shards = int(rng.integers(1, 50))
        ranges = sensor_shard_ranges(num_sensors, n_shards)
        assert ranges[0][0] == 0 and ranges[-1][1] == num_sensors
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start
        sizes = [stop - start for start, stop in ranges]
        assert min(sizes) >= 1
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)  # remainder goes first

    def test_invalid_inputs_raise(self):
        x = np.zeros((2, 4, 3, 1))
        y = np.zeros((2, 4, 3, 1))
        with pytest.raises(ValueError, match="zero sensors"):
            sensor_shard_ranges(0, 2)
        with pytest.raises(ValueError, match="at least one shard"):
            sensor_shard_ranges(4, 0)
        with pytest.raises(ValueError, match=r"\(B, N"):
            shard_sensors(np.zeros(4), np.zeros(4), 2)
        with pytest.raises(ValueError, match="sensor count"):
            shard_sensors(x, y[:, :3], 2)
        with pytest.raises(ValueError, match="empty batch"):
            shard_batch(x[:0], y[:0], 2)
        with pytest.raises(ValueError, match="batch size"):
            shard_batch(x, y[:1], 2)
        with pytest.raises(ValueError, match="nothing to unshard"):
            unshard_sensors([])


# --------------------------------------------------------------------- #
# the all-reduce identity: sensor shards recombine to the serial step
# --------------------------------------------------------------------- #
def _tiny_simst(num_sensors: int, seed: int, encoder: str) -> SimSTForecaster:
    rng = np.random.default_rng(seed)
    adjacency = rng.random((num_sensors, num_sensors))
    return SimSTForecaster(
        num_sensors,
        adjacency,
        history=4,
        horizon=3,
        hidden=8,
        embedding_dim=4,
        predictor_hidden=8,
        num_neighbors=3,
        encoder=encoder,
        seed=seed,
    )


def _masked_targets(rng: np.random.Generator, shape) -> np.ndarray:
    """NaN-masked targets where every sensor keeps >= 1 finite element."""
    y = rng.standard_normal(shape)
    mask = rng.random(y.shape) < 0.3
    mask[0, :, 0] = False  # no shard can end up with zero finite targets
    return np.where(mask, np.nan, y)


def _loss_and_grads(model, loss_fn, x, y):
    for parameter in model.parameters():
        parameter.zero_grad()
    loss = loss_fn(model(Tensor(x)), Tensor(y))
    loss.backward()
    grads = [
        None if p.grad is None else p.grad.copy() for p in model.parameters()
    ]
    return float(loss.item()), grads


class TestGradientEquality:
    @pytest.mark.parametrize("encoder", ["mlp", "gru"])
    @pytest.mark.parametrize("masked", [False, True], ids=["dense", "nan-masked"])
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7, 9])
    def test_sensor_shards_reduce_to_serial(self, encoder, masked, n_shards):
        num_sensors, batch = 7, 3
        rng = np.random.default_rng(n_shards * 10 + (1 if masked else 0))
        model = _tiny_simst(num_sensors, seed=5, encoder=encoder)
        loss_fn = STWALoss(delta=1.0, kl_weight=0.0)
        x = rng.standard_normal((batch, num_sensors, model.history, 1))
        y_shape = (batch, num_sensors, model.horizon, 1)
        y = _masked_targets(rng, y_shape) if masked else rng.standard_normal(y_shape)

        serial_loss, serial_grads = _loss_and_grads(model, loss_fn, x, y)

        augmented = model.augment(x)
        shard_losses, shard_grads, weights = [], [], []
        for start, stop in sensor_shard_ranges(num_sensors, n_shards):
            model.set_sensor_shard(start, stop)
            loss, grads = _loss_and_grads(
                model, loss_fn, augmented[:, start:stop], y[:, start:stop]
            )
            model.clear_sensor_shard()
            shard_losses.append(loss)
            shard_grads.append(grads)
            weights.append(float(np.isfinite(y[:, start:stop]).sum()))

        total = all_reduce_gradients(model.parameters(), shard_grads, weights)
        combined_loss = float(np.dot(shard_losses, weights) / total)
        assert combined_loss == pytest.approx(serial_loss, abs=GRAD_ATOL)
        for serial, parameter in zip(serial_grads, model.parameters()):
            assert (serial is None) == (parameter.grad is None)
            if serial is not None:
                np.testing.assert_allclose(
                    parameter.grad, serial, rtol=0.0, atol=GRAD_ATOL
                )

    def test_embedding_rows_touched_by_exactly_one_shard(self):
        """Each shard's embedding gradient is zero outside its own rows."""
        num_sensors = 6
        rng = np.random.default_rng(99)
        model = _tiny_simst(num_sensors, seed=3, encoder="mlp")
        loss_fn = STWALoss(delta=1.0, kl_weight=0.0)
        x = rng.standard_normal((2, num_sensors, model.history, 1))
        y = rng.standard_normal((2, num_sensors, model.horizon, 1))
        augmented = model.augment(x)
        embedding_index = model.parameters().index(model.node_embedding)
        for start, stop in sensor_shard_ranges(num_sensors, 3):
            model.set_sensor_shard(start, stop)
            _, grads = _loss_and_grads(
                model, loss_fn, augmented[:, start:stop], y[:, start:stop]
            )
            model.clear_sensor_shard()
            grad = grads[embedding_index]
            assert grad.shape == model.node_embedding.shape
            outside = np.delete(grad, np.arange(start, stop), axis=0)
            assert np.all(outside == 0.0)
            assert np.any(grad[start:stop] != 0.0)
