"""Every baseline in the registry: contract, learnability, mechanisms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    MODEL_FAMILIES,
    PersistenceForecaster,
    VARForecaster,
    WindowMeanForecaster,
    available_models,
    build_model,
    model_family,
    similarity_graph,
)
from repro.baselines.stsgcn import build_st_block_adjacency
from repro.optim import Adam
from repro.tensor import Tensor, functional as F, no_grad

HISTORY, HORIZON = 12, 12


@pytest.fixture(scope="module")
def x_batch(tiny_dataset):
    rng = np.random.default_rng(0)
    return Tensor(rng.standard_normal((2, tiny_dataset.num_sensors, HISTORY, 1)))


class TestRegistry:
    def test_every_model_has_a_family(self):
        assert set(available_models()) == set(MODEL_FAMILIES)

    def test_unknown_model_raises(self, tiny_dataset):
        with pytest.raises(KeyError):
            build_model("nope", tiny_dataset, HISTORY, HORIZON)
        with pytest.raises(KeyError):
            model_family("nope")

    def test_name_lookup_case_insensitive(self, tiny_dataset):
        model = build_model("St-Wa", tiny_dataset, HISTORY, HORIZON)
        assert model is not None

    @pytest.mark.parametrize("name", sorted(available_models()))
    def test_forecaster_contract(self, name, tiny_dataset, x_batch):
        """(B, N, H, F) -> (B, N, U, F) for every registered model."""
        model = build_model(name, tiny_dataset, HISTORY, HORIZON, seed=0)
        with no_grad():
            out = model(x_batch)
        assert out.shape == (2, tiny_dataset.num_sensors, HORIZON, 1)
        assert np.all(np.isfinite(out.numpy()))

    @pytest.mark.parametrize(
        "name",
        ["gru", "att", "dcrnn", "stgcn", "gwn", "agcrn", "enhancenet", "meta-lstm", "stfgnn", "stsgcn", "astgnn", "stg2seq", "longformer"],
    )
    def test_one_training_step_reduces_loss(self, name, tiny_dataset, x_batch):
        """Gradients must actually reach each model's parameters."""
        model = build_model(name, tiny_dataset, HISTORY, HORIZON, seed=0)
        target = Tensor(np.zeros((2, tiny_dataset.num_sensors, HORIZON, 1)))
        optimizer = Adam(model.parameters(), lr=5e-3)
        losses = []
        for _ in range(8):
            optimizer.zero_grad()
            loss = F.huber_loss(model(x_batch), target)
            losses.append(loss.item())
            loss.backward()
            optimizer.step()
        # either the loss went down, or it was already at numerical zero
        assert losses[-1] < losses[0] or losses[-1] < 1e-4


class TestClassicalBaselines:
    def test_persistence_repeats_last_value(self, rng):
        model = PersistenceForecaster(4, 3)
        x = Tensor(rng.standard_normal((2, 5, 4, 1)))
        out = model(x).numpy()
        for step in range(3):
            np.testing.assert_array_equal(out[:, :, step], x.numpy()[:, :, -1])

    def test_window_mean(self, rng):
        model = WindowMeanForecaster(4, 2)
        x = Tensor(rng.standard_normal((2, 5, 4, 1)))
        out = model(x).numpy()
        np.testing.assert_allclose(out[:, :, 0], x.numpy().mean(axis=2))

    def test_var_requires_fit(self, rng):
        model = VARForecaster(3, 4, 2)
        with pytest.raises(RuntimeError, match="fit"):
            model(Tensor(rng.standard_normal((1, 3, 4, 1))))

    def test_var_input_validation(self):
        model = VARForecaster(3, 4, 2)
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 50)))
        with pytest.raises(ValueError, match="sensor"):
            model.fit(np.zeros((5, 50, 1)))

    def test_var_recovers_linear_dynamics(self, rng):
        """VAR must nail a truly linear AR process."""
        n, total = 3, 400
        series = np.zeros((n, total))
        series[:, 0] = rng.standard_normal(n)
        coupling = np.array([[0.8, 0.1, 0.0], [0.0, 0.7, 0.2], [0.1, 0.0, 0.8]])
        for t in range(1, total):
            series[:, t] = coupling @ series[:, t - 1] + 0.01 * rng.standard_normal(n)
        data = series[:, :, None]
        model = VARForecaster(n, 4, 2, ridge=1e-6).fit(data[:, :300])
        x = Tensor(data[None, :, 300:304])
        prediction = model(x).numpy()[0, :, 0, 0]
        np.testing.assert_allclose(prediction, series[:, 304], atol=0.1)


class TestMechanisms:
    def test_stsgcn_block_adjacency_structure(self):
        adj = np.zeros((3, 3))
        adj[0, 1] = adj[1, 0] = 1.0
        block = build_st_block_adjacency(adj, steps=3)
        assert block.shape == (9, 9)
        # temporal self-connections exist between adjacent copies
        assert block[0, 3] > 0 and block[3, 6] > 0
        # no connection skipping a step
        assert block[0, 6] == 0

    def test_similarity_graph_topk_and_symmetric(self, rng):
        series = rng.standard_normal((6, 200, 1))
        series[1] = series[0] * 1.1 + 0.01 * rng.standard_normal((200, 1))  # correlated pair
        graph = similarity_graph(series, top_k=2)
        np.testing.assert_allclose(graph, graph.T)
        assert graph[0, 1] > 0  # finds the correlated pair
        np.testing.assert_allclose(np.diag(graph), 0.0)

    def test_similarity_graph_detects_lagged_twin(self, rng):
        base = np.cumsum(rng.standard_normal(203))
        series = np.zeros((3, 200, 1))
        series[0, :, 0] = base[:200]
        series[1, :, 0] = base[2:202]  # lag-2 twin
        series[2, :, 0] = rng.standard_normal(200)
        graph = similarity_graph(series, top_k=1, max_lag=2)
        assert graph[0, 1] > graph[0, 2]

    def test_enhancenet_memory_makes_sensors_behave_differently(self, tiny_dataset, rng):
        """Per-location memory = spatial awareness: identical inputs at two
        sensors yield different forecasts."""
        model = build_model("enhancenet", tiny_dataset, HISTORY, HORIZON, seed=0)
        n = tiny_dataset.num_sensors
        x_np = np.repeat(rng.standard_normal((1, 1, HISTORY, 1)), n, axis=1)
        with no_grad():
            out = model(Tensor(x_np)).numpy()
        assert not np.allclose(out[0, 0], out[0, 1])

    def test_meta_lstm_is_spatial_agnostic(self, tiny_dataset, rng):
        """meta-LSTM shares parameters across sensors: identical inputs give
        identical outputs (the paper's criticism)."""
        model = build_model("meta-lstm", tiny_dataset, HISTORY, HORIZON, seed=0)
        n = tiny_dataset.num_sensors
        x_np = np.repeat(rng.standard_normal((1, 1, HISTORY, 1)), n, axis=1)
        with no_grad():
            out = model(Tensor(x_np)).numpy()
        np.testing.assert_allclose(out[0, 0], out[0, 1], atol=1e-10)

    def test_agcrn_is_spatial_aware(self, tiny_dataset, rng):
        model = build_model("agcrn", tiny_dataset, HISTORY, HORIZON, seed=0)
        n = tiny_dataset.num_sensors
        x_np = np.repeat(rng.standard_normal((1, 1, HISTORY, 1)), n, axis=1)
        with no_grad():
            out = model(Tensor(x_np)).numpy()
        assert not np.allclose(out[0, 0], out[0, 1])
