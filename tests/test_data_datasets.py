"""Dataset registry and the PEMS-sim loaders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    available_datasets,
    dataset_spec,
    load_dataset,
    sensors_for_profile,
)


class TestRegistry:
    def test_four_pems_datasets(self):
        assert available_datasets() == ["PEMS03", "PEMS04", "PEMS07", "PEMS08"]

    def test_paper_sensor_counts(self):
        assert dataset_spec("PEMS03").paper_sensors == 358
        assert dataset_spec("PEMS04").paper_sensors == 307
        assert dataset_spec("PEMS07").paper_sensors == 883
        assert dataset_spec("PEMS08").paper_sensors == 170

    def test_case_and_suffix_insensitive(self):
        assert dataset_spec("pems04-sim").name == "PEMS04"

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            dataset_spec("METR-LA")

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            load_dataset("PEMS04", profile="huge")

    def test_size_ordering_preserved(self):
        """PEMS07 largest, PEMS08 smallest — matters for the OOM table."""
        sizes = {name: sensors_for_profile(name, "fast") for name in available_datasets()}
        assert sizes["PEMS07"] > sizes["PEMS03"] >= sizes["PEMS04"] > sizes["PEMS08"]


class TestLoadDataset:
    @pytest.fixture(scope="class")
    def ds(self):
        return load_dataset("PEMS08", profile="fast")

    def test_split_fractions(self, ds):
        total = ds.train.shape[1] + ds.val.shape[1] + ds.test.shape[1]
        np.testing.assert_allclose(ds.train.shape[1] / total, 0.6, atol=0.01)
        np.testing.assert_allclose(ds.val.shape[1] / total, 0.2, atol=0.01)

    def test_train_is_scaled(self, ds):
        np.testing.assert_allclose(ds.train.mean(), 0.0, atol=1e-9)
        np.testing.assert_allclose(ds.train.std(), 1.0, atol=1e-9)

    def test_raw_recoverable_via_scaler(self, ds):
        np.testing.assert_allclose(ds.scaler.inverse_transform(ds.val), ds.val_raw, atol=1e-9)

    def test_adjacency_matches_sensor_count(self, ds):
        assert ds.adjacency.shape == (ds.num_sensors, ds.num_sensors)
        assert (ds.adjacency > 0).sum() > 0

    def test_deterministic(self):
        a = load_dataset("PEMS08", profile="fast")
        b = load_dataset("PEMS08", profile="fast")
        np.testing.assert_array_equal(a.train, b.train)

    def test_seed_offset_changes_data(self):
        a = load_dataset("PEMS08", profile="fast")
        b = load_dataset("PEMS08", profile="fast", seed_offset=1)
        assert not np.allclose(a.train_raw, b.train_raw)

    def test_different_datasets_differ(self):
        a = load_dataset("PEMS04", profile="fast")
        b = load_dataset("PEMS03", profile="fast")
        assert a.num_sensors != b.num_sensors or not np.allclose(
            a.train_raw[: b.num_sensors], b.train_raw[: a.num_sensors]
        )
