"""Gradient and shape checks for every primitive op in repro.tensor.ops."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, ops
from repro.tensor.gradcheck import check_gradients


def t(shape, rng, scale=1.0):
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=True)


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "op",
        [ops.add, ops.sub, ops.mul],
        ids=["add", "sub", "mul"],
    )
    def test_binary_same_shape(self, op, rng):
        a, b = t((3, 4), rng), t((3, 4), rng)
        check_gradients(op, [a, b])

    @pytest.mark.parametrize(
        "shape_a,shape_b",
        [((3, 4), (4,)), ((3, 4), (1, 4)), ((2, 3, 4), (3, 4)), ((5, 1), (1, 6)), ((3, 4), ())],
    )
    def test_broadcasting_gradients(self, shape_a, shape_b, rng):
        a, b = t(shape_a, rng), t(shape_b, rng)
        check_gradients(ops.add, [a, b])
        check_gradients(ops.mul, [a, b])

    def test_div(self, rng):
        a = t((3, 4), rng)
        b = Tensor(rng.uniform(0.5, 2.0, (3, 4)), requires_grad=True)
        check_gradients(ops.div, [a, b])

    def test_neg(self, rng):
        check_gradients(ops.neg, [t((3, 4), rng)])

    @pytest.mark.parametrize("exponent", [2.0, 3.0, 0.5])
    def test_power(self, exponent, rng):
        a = Tensor(rng.uniform(0.5, 2.0, (3, 4)), requires_grad=True)
        check_gradients(lambda x: ops.power(x, exponent), [a])

    def test_exp_log_sqrt(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, (3, 4)), requires_grad=True)
        check_gradients(ops.exp, [a])
        check_gradients(ops.log, [a])
        check_gradients(ops.sqrt, [a])

    def test_abs(self, rng):
        a = Tensor(rng.standard_normal((3, 4)) + 0.5, requires_grad=True)
        check_gradients(ops.abs, [a])

    def test_maximum_minimum(self, rng):
        a, b = t((3, 4), rng), t((3, 4), rng)
        check_gradients(ops.maximum, [a, b])
        check_gradients(ops.minimum, [a, b])

    def test_clip(self, rng):
        a = t((4, 5), rng, scale=2.0)
        check_gradients(lambda x: ops.clip(x, -1.0, 1.0), [a])

    def test_where(self, rng):
        a, b = t((3, 4), rng), t((3, 4), rng)
        cond = rng.random((3, 4)) > 0.5
        check_gradients(lambda x, y: ops.where(cond, x, y), [a, b])


class TestActivations:
    @pytest.mark.parametrize(
        "op",
        [ops.tanh, ops.sigmoid, ops.relu, ops.softplus],
        ids=["tanh", "sigmoid", "relu", "softplus"],
    )
    def test_gradients(self, op, rng):
        a = Tensor(rng.standard_normal((3, 4)) + 0.1, requires_grad=True)
        check_gradients(op, [a])

    def test_leaky_relu(self, rng):
        a = Tensor(rng.standard_normal((3, 4)) + 0.1, requires_grad=True)
        check_gradients(lambda x: ops.leaky_relu(x, 0.1), [a])

    def test_sigmoid_extreme_values_stable(self):
        a = Tensor(np.array([-1000.0, 0.0, 1000.0]))
        out = ops.sigmoid(a).numpy()
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)

    def test_softplus_extreme_values_stable(self):
        out = ops.softplus(Tensor(np.array([-1000.0, 1000.0]))).numpy()
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[1], 1000.0)


class TestMatmul:
    @pytest.mark.parametrize(
        "shape_a,shape_b",
        [
            ((3, 4), (4, 5)),
            ((2, 3, 4), (4, 5)),
            ((2, 3, 4), (2, 4, 5)),
            ((2, 6, 3, 4), (4, 5)),
            ((6, 3, 4), (1, 4, 5)),
            ((4,), (4, 5)),
            ((3, 4), (4,)),
            ((2, 3, 4), (4,)),
        ],
    )
    def test_gradients(self, shape_a, shape_b, rng):
        a, b = t(shape_a, rng), t(shape_b, rng)
        check_gradients(ops.matmul, [a, b])

    def test_matches_numpy(self, rng):
        a, b = rng.standard_normal((2, 3, 4)), rng.standard_normal((4, 5))
        out = ops.matmul(Tensor(a), Tensor(b)).numpy()
        np.testing.assert_allclose(out, a @ b)


class TestShapeOps:
    def test_reshape(self, rng):
        a = t((2, 3, 4), rng)
        check_gradients(lambda x: ops.reshape(x, (6, 4)), [a])
        assert ops.reshape(a, (4, 6)).shape == (4, 6)

    def test_transpose_default_and_axes(self, rng):
        a = t((2, 3, 4), rng)
        check_gradients(lambda x: ops.transpose(x), [a])
        check_gradients(lambda x: ops.transpose(x, (1, 2, 0)), [a])

    def test_swapaxes(self, rng):
        a = t((2, 3, 4), rng)
        check_gradients(lambda x: ops.swapaxes(x, 1, 2), [a])

    @pytest.mark.parametrize(
        "index",
        [0, slice(1, 3), (slice(None), 1), (slice(None), slice(None), slice(0, 2)), np.array([0, 2, 2])],
        ids=["int", "slice", "tuple-int", "tuple-slice", "fancy-repeated"],
    )
    def test_getitem(self, index, rng):
        a = t((4, 3, 2), rng)
        check_gradients(lambda x: ops.getitem(x, index), [a])

    def test_getitem_repeated_index_accumulates(self, rng):
        a = t((4,), rng)
        out = ops.getitem(a, np.array([1, 1, 1]))
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 3.0, 0.0, 0.0])

    @pytest.mark.parametrize("axis", [0, 1, 2, -1])
    def test_concat(self, axis, rng):
        a, b = t((2, 3, 4), rng), t((2, 3, 4), rng)
        check_gradients(lambda x, y: ops.concat([x, y], axis=axis), [a, b])

    @pytest.mark.parametrize("axis", [0, 1, -1])
    def test_stack(self, axis, rng):
        a, b, c = t((2, 3), rng), t((2, 3), rng), t((2, 3), rng)
        check_gradients(lambda x, y, z: ops.stack([x, y, z], axis=axis), [a, b, c])

    def test_pad(self, rng):
        a = t((2, 3), rng)
        check_gradients(lambda x: ops.pad(x, [(1, 0), (0, 2)]), [a])

    def test_broadcast_to(self, rng):
        a = t((1, 3), rng)
        check_gradients(lambda x: ops.broadcast_to(x, (4, 3)), [a])


class TestReductions:
    @pytest.mark.parametrize("axis", [None, 0, 1, -1, (0, 1)])
    @pytest.mark.parametrize("keepdims", [False, True])
    def test_sum_mean(self, axis, keepdims, rng):
        a = t((3, 4, 2), rng)
        check_gradients(lambda x: ops.sum(x, axis=axis, keepdims=keepdims), [a])
        check_gradients(lambda x: ops.mean(x, axis=axis, keepdims=keepdims), [a])

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_max_min(self, axis, rng):
        # well-separated values avoid finite-difference ties
        a = Tensor(rng.permutation(24).reshape(4, 6).astype(float), requires_grad=True)
        check_gradients(lambda x: ops.max(x, axis=axis), [a])
        check_gradients(lambda x: ops.min(x, axis=axis), [a])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([[2.0, 2.0, 1.0]]), requires_grad=True)
        ops.max(a, axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5, 0.0]])

    def test_var_matches_numpy(self, rng):
        data = rng.standard_normal((5, 6))
        out = ops.var(Tensor(data), axis=1).numpy()
        np.testing.assert_allclose(out, data.var(axis=1))

    def test_var_gradients(self, rng):
        a = t((3, 5), rng)
        check_gradients(lambda x: ops.var(x, axis=1), [a])


class TestSoftmax:
    @pytest.mark.parametrize("axis", [0, 1, -1])
    def test_gradients(self, axis, rng):
        a = t((3, 4), rng)
        check_gradients(lambda x: ops.softmax(x, axis=axis), [a])
        check_gradients(lambda x: ops.log_softmax(x, axis=axis), [a])

    def test_rows_sum_to_one(self, rng):
        out = ops.softmax(Tensor(rng.standard_normal((5, 7)) * 10), axis=-1).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(5))

    def test_shift_invariance(self, rng):
        logits = rng.standard_normal((3, 4))
        a = ops.softmax(Tensor(logits), axis=-1).numpy()
        b = ops.softmax(Tensor(logits + 100.0), axis=-1).numpy()
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_log_softmax_consistent_with_softmax(self, rng):
        logits = Tensor(rng.standard_normal((3, 4)))
        np.testing.assert_allclose(
            ops.log_softmax(logits, axis=-1).numpy(),
            np.log(ops.softmax(logits, axis=-1).numpy()),
            atol=1e-12,
        )

    def test_extreme_logits_stable(self):
        out = ops.softmax(Tensor(np.array([[1000.0, -1000.0]])), axis=-1).numpy()
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [[1.0, 0.0]], atol=1e-12)
