"""Benchmark trajectory harness (python -m repro.harness bench)."""

from __future__ import annotations

import json

import pytest

from repro.harness import bench
from repro.harness.__main__ import main as harness_main
from repro.harness.runner import RunSettings


@pytest.fixture(scope="module")
def first_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench")
    result = bench.run(
        settings=RunSettings.from_scope("smoke"), out_dir=out, date="2026-01-01"
    )
    return out, result


class TestBenchRun:
    def test_writes_bench_json(self, first_run):
        out, result = first_run
        path = out / "BENCH_2026-01-01.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["schema"] == 2
        assert payload["gradcheck_cases"] == 13
        assert payload["previous"] is None
        assert payload["deltas_vs_previous"] is None

    def test_compiled_section_and_profile_artifact(self, first_run):
        out, result = first_run
        compiled = result.extras["payload"]["compiled"]
        assert compiled["equivalence"]["ok"]
        assert compiled["equivalence"]["steps"] >= 5
        assert set(compiled["steps"]) == {"online", "train"}
        for label in compiled["steps"].values():
            assert label["serial_step_seconds"] > 0
            assert label["compiled_step_seconds"] > 0
        assert compiled["executor_stats"]["traces"] >= 1
        assert compiled["plans"], "live plan stats expected in the profile"
        profile = json.loads((out / "compile_profile.json").read_text())
        assert profile["compiled"]["equivalence"]["ok"]

    def test_micro_suite_fixed_and_instrumented(self, first_run):
        _, result = first_run
        micro = result.extras["payload"]["micro"]
        assert set(micro) == {
            "matmul_shared_weight",
            "linear_fused",
            "matmul_generated_weight",
            "getitem_window_slices",
            "getitem_advanced_index",
            "gather_per_node",
            "concat_gates",
            "elementwise_chain",
        }
        for stats in micro.values():
            assert stats["seconds"] > 0
            assert stats["grad_allocs"] > 0
            assert stats["grad_alloc_bytes"] > 0

    def test_st_wa_epoch_recorded(self, first_run):
        _, result = first_run
        st_wa = result.extras["payload"]["st_wa_smoke"]
        assert st_wa["wall_seconds"] > 0
        assert st_wa["grad_allocs"] > 0
        assert st_wa["ops"], "per-op seconds should be recorded for delta tracking"

    def test_second_run_reports_deltas(self, first_run):
        out, _ = first_run
        result = bench.run(
            settings=RunSettings.from_scope("smoke"), out_dir=out, date="2026-01-02"
        )
        payload = result.extras["payload"]
        assert payload["previous"] == "BENCH_2026-01-01.json"
        deltas = payload["deltas_vs_previous"]
        assert set(deltas["micro_seconds"]) == set(payload["micro"])
        assert isinstance(deltas["st_wa_wall_seconds"], float)
        assert deltas["st_wa_ops"], "per-op deltas vs previous BENCH expected"
        assert set(deltas["compiled_step_seconds"]) == {"online", "train"}
        assert not result.extras["regressed"]

    def test_check_fails_when_compiled_gate_fails(self, first_run, tmp_path, monkeypatch):
        _, result = first_run
        failing = json.loads(json.dumps(result.extras["payload"]["compiled"]))
        failing["ok"] = False
        failing["speedup_ok"] = False
        monkeypatch.setattr(bench, "_compiled_bench", lambda settings: failing)
        rerun = bench.run(
            settings=RunSettings.from_scope("smoke"),
            out_dir=tmp_path,
            date="2026-01-05",
            check=True,
        )
        assert rerun.extras["regressed"]

    def test_regression_flagged_against_faster_previous(self, tmp_path, first_run):
        out, result = first_run
        fake = json.loads((out / "BENCH_2026-01-01.json").read_text())
        fake["st_wa_smoke"]["wall_seconds"] = 1e-6  # impossibly fast baseline
        (tmp_path / "BENCH_2025-12-31.json").write_text(json.dumps(fake))
        rerun = bench.run(
            settings=RunSettings.from_scope("smoke"),
            out_dir=tmp_path,
            date="2026-01-01",
            check=True,
            max_regression=0.25,
        )
        assert rerun.extras["regressed"]

    def test_no_out_dir_skips_writing(self):
        result = bench.run(
            settings=RunSettings.from_scope("smoke"), out_dir=None, date="2026-01-03"
        )
        assert "previous" not in result.extras["payload"]

    def test_latest_pointer_mirrors_snapshot(self, tmp_path):
        out = tmp_path / "results"
        bench.run(settings=RunSettings.from_scope("smoke"), out_dir=out, date="2026-02-02")
        latest = tmp_path / bench.LATEST_NAME  # root-level, next to the out dir
        assert latest.exists()
        assert json.loads(latest.read_text()) == json.loads(
            (out / "BENCH_2026-02-02.json").read_text()
        )

    def test_find_previous_ignores_latest_pointer(self, tmp_path):
        (tmp_path / "BENCH_2026-01-01.json").write_text("{}")
        # "latest" sorts after any date; it must never be picked as baseline
        (tmp_path / bench.LATEST_NAME).write_text("{}")
        previous = bench._find_previous(tmp_path, "BENCH_2026-01-02.json")
        assert previous.name == "BENCH_2026-01-01.json"
        only_latest = tmp_path / "empty"
        only_latest.mkdir()
        (only_latest / bench.LATEST_NAME).write_text("{}")
        assert bench._find_previous(only_latest, "BENCH_2026-01-02.json") is None


class TestBenchCLI:
    def test_bench_subcommand(self, tmp_path, capsys):
        code = harness_main(["bench", "--scope", "smoke", "--out", str(tmp_path)])
        assert code == 0
        bench_files = list(tmp_path.glob("BENCH_*.json"))
        assert len(bench_files) == 1
        out = capsys.readouterr().out
        assert "st_wa_smoke_epoch" in out
        assert "fast-path gradchecks passed" in out

    def test_bench_rejects_extra_arguments(self):
        with pytest.raises(SystemExit):
            harness_main(["bench", "table4"])
