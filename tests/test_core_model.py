"""The full ST-WA model and its paper-named variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    STWA,
    STWAConfig,
    STWALoss,
    default_window_sizes,
    make_deterministic_st_wa,
    make_mean_aggregator_st_wa,
    make_s_wa,
    make_st_wa,
    make_wa,
    make_wa1,
)
from repro.tensor import Tensor


SMALL = dict(model_dim=8, latent_dim=4, skip_dim=8, predictor_hidden=16)


class TestConfig:
    def test_window_sizes_must_divide_history(self):
        with pytest.raises(ValueError, match="divide"):
            STWAConfig(num_sensors=4, history=12, window_sizes=(5,)).layer_lengths()

    def test_layer_lengths(self):
        config = STWAConfig(num_sensors=4, history=12, window_sizes=(3, 2, 2))
        assert config.layer_lengths() == [12, 4, 2]

    def test_default_window_sizes(self):
        assert default_window_sizes(12) == (3, 2, 2)
        assert default_window_sizes(72) == (6, 6, 2)
        sizes = default_window_sizes(36)
        remaining = 36
        for s in sizes:
            assert remaining % s == 0
            remaining //= s


class TestForward:
    @pytest.mark.parametrize(
        "maker",
        [make_st_wa, make_s_wa, make_wa, make_wa1, make_deterministic_st_wa, make_mean_aggregator_st_wa],
        ids=["ST-WA", "S-WA", "WA", "WA-1", "det", "mean-agg"],
    )
    def test_variant_shapes(self, maker, rng):
        model = maker(5, history=12, horizon=12, seed=1, **SMALL)
        out = model(Tensor(rng.standard_normal((2, 5, 12, 1))))
        assert out.shape == (2, 5, 12, 1)

    def test_history_mismatch_raises(self, rng):
        model = make_st_wa(5, seed=1, **SMALL)
        with pytest.raises(ValueError, match="history"):
            model(Tensor(rng.standard_normal((2, 5, 10, 1))))

    def test_kl_present_for_stochastic_variants(self, rng):
        x = Tensor(rng.standard_normal((2, 5, 12, 1)))
        st_wa = make_st_wa(5, seed=1, **SMALL)
        st_wa(x)
        assert st_wa.kl_divergence() is not None and st_wa.kl_divergence().item() > 0

    def test_kl_absent_for_agnostic_and_deterministic(self, rng):
        x = Tensor(rng.standard_normal((2, 5, 12, 1)))
        for maker in (make_wa, make_deterministic_st_wa):
            model = maker(5, seed=1, **SMALL)
            model(x)
            assert model.kl_divergence() is None

    def test_eval_mode_is_deterministic(self, rng):
        model = make_st_wa(5, seed=1, **SMALL)
        model.eval()
        x = Tensor(rng.standard_normal((1, 5, 12, 1)))
        np.testing.assert_array_equal(model(x).numpy(), model(x).numpy())

    def test_train_mode_is_stochastic(self, rng):
        model = make_st_wa(5, seed=1, **SMALL)
        model.train()
        x = Tensor(rng.standard_normal((1, 5, 12, 1)))
        assert not np.allclose(model(x).numpy(), model(x).numpy())

    def test_temporal_awareness_changes_parameters_across_inputs(self, rng):
        """The generated projections differ between two input windows —
        time-varying parameters, the paper's core claim."""
        model = make_st_wa(5, seed=1, **SMALL)
        model.eval()
        a = model.generated_projections(Tensor(rng.standard_normal((1, 5, 12, 1))))
        b = model.generated_projections(Tensor(rng.standard_normal((1, 5, 12, 1))))
        assert not np.allclose(a[0]["K"].numpy(), b[0]["K"].numpy())

    def test_spatial_awareness_distinct_parameters_per_sensor(self, rng):
        model = make_s_wa(5, seed=1, **SMALL)
        model.eval()
        projections = model.generated_projections(Tensor(rng.standard_normal((1, 5, 12, 1))))
        k = projections[0]["K"].numpy()
        assert not np.allclose(k[0], k[1])

    def test_agnostic_model_rejects_projection_query(self, rng):
        model = make_wa(5, seed=1, **SMALL)
        with pytest.raises(RuntimeError, match="agnostic"):
            model.generated_projections(Tensor(rng.standard_normal((1, 5, 12, 1))))

    def test_sensor_attention_can_be_disabled(self, rng):
        model = make_st_wa(5, seed=1, sensor_attention=False, **SMALL)
        out = model(Tensor(rng.standard_normal((2, 5, 12, 1))))
        assert out.shape == (2, 5, 12, 1)
        assert len(model.sensor_attentions) == 0

    def test_multi_feature_input(self, rng):
        model = STWA(STWAConfig(num_sensors=4, in_features=2, history=12, horizon=6, seed=1, **SMALL))
        out = model(Tensor(rng.standard_normal((2, 4, 12, 2))))
        assert out.shape == (2, 4, 6, 2)


class TestVariantOrderingOfCapacity:
    def test_parameter_count_ordering(self):
        """ST-WA > S-WA > WA > WA-1 in parameters (Table VIII shape)."""
        st_wa = make_st_wa(10, seed=0).num_parameters()
        s_wa = make_s_wa(10, seed=0).num_parameters()
        wa = make_wa(10, seed=0).num_parameters()
        wa1 = make_wa1(10, seed=0).num_parameters()
        assert st_wa > s_wa > wa > wa1

    def test_generation_decouples_sensors_from_d_squared(self):
        """Scaling N 10x must grow parameters far less than 10x (the O(N*k)
        vs O(N*d^2) claim of Section IV-A.3)."""
        small_n = make_st_wa(10, seed=0).num_parameters()
        large_n = make_st_wa(100, seed=0).num_parameters()
        assert large_n < small_n * 3


class TestLoss:
    def test_validation(self):
        with pytest.raises(ValueError):
            STWALoss(delta=0.0)
        with pytest.raises(ValueError):
            STWALoss(kl_weight=-1.0)

    def test_loss_includes_kl_for_stochastic_model(self, rng):
        model = make_st_wa(4, seed=1, **SMALL)
        x = Tensor(rng.standard_normal((2, 4, 12, 1)))
        prediction = model(x)
        target = Tensor(np.zeros(prediction.shape))
        with_kl = STWALoss(kl_weight=1.0)(prediction, target, model=model)
        without_kl = STWALoss(kl_weight=0.0)(prediction, target, model=model)
        assert with_kl.item() > without_kl.item()

    def test_loss_backward_reaches_all_parameters(self, rng):
        model = make_st_wa(4, seed=1, **SMALL)
        x = Tensor(rng.standard_normal((2, 4, 12, 1)))
        prediction = model(x)
        loss = STWALoss(kl_weight=0.1)(prediction, Tensor(np.zeros(prediction.shape)), model=model)
        loss.backward()
        with_grad = sum(1 for p in model.parameters() if p.grad is not None)
        assert with_grad / len(model.parameters()) > 0.95
