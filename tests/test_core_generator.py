"""Parameter decoder D_ω (paper Eq. 8): latent -> model parameters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.generator import ParameterDecoder
from repro.tensor import Tensor
from repro.tensor.gradcheck import check_gradients


class TestParameterDecoder:
    def test_requires_shapes(self, rng):
        with pytest.raises(ValueError):
            ParameterDecoder(4, {}, rng=rng)

    def test_output_shapes(self, rng):
        decoder = ParameterDecoder(4, {"K": (3, 5), "V": (3, 5)}, rng=rng)
        out = decoder(Tensor(rng.standard_normal((2, 6, 4))))
        assert set(out) == {"K", "V"}
        assert out["K"].shape == (2, 6, 3, 5)
        assert out["V"].shape == (2, 6, 3, 5)

    def test_total_size(self, rng):
        decoder = ParameterDecoder(4, {"Q": (2, 3), "K": (2, 3), "V": (2, 3)}, rng=rng)
        assert decoder.total_size == 18

    def test_distinct_latents_give_distinct_parameters(self, rng):
        """The heart of spatio-temporal awareness: different Θ -> different
        projection matrices."""
        decoder = ParameterDecoder(4, {"K": (3, 5)}, rng=rng)
        theta = Tensor(rng.standard_normal((2, 4)))
        out = decoder(theta)["K"].numpy()
        assert not np.allclose(out[0], out[1])

    def test_shared_decoder_is_a_function(self, rng):
        """Same latent -> same parameters (the decoder itself is shared)."""
        decoder = ParameterDecoder(4, {"K": (3, 5)}, rng=rng)
        theta = Tensor(rng.standard_normal((1, 4)))
        a = decoder(theta)["K"].numpy()
        b = decoder(theta)["K"].numpy()
        np.testing.assert_array_equal(a, b)

    def test_gradients_flow_to_latent(self, rng):
        decoder = ParameterDecoder(3, {"K": (2, 2), "V": (2, 2)}, rng=rng)
        theta = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        check_gradients(lambda t: decoder(t)["K"] + decoder(t)["V"], [theta])

    def test_parameter_scaling_reasonable(self, rng):
        """Generated projections should start near Xavier magnitude, not
        explode — otherwise training diverges immediately."""
        decoder = ParameterDecoder(8, {"K": (16, 16)}, hidden=(16, 32), rng=rng)
        theta = Tensor(rng.standard_normal((10, 8)))
        out = decoder(theta)["K"].numpy()
        assert np.abs(out).mean() < 1.0

    def test_parameter_count_scales_with_decoder_not_sensors(self, rng):
        """Section IV-A.3: O(N*k) + shared decoder, not O(N*d^2)."""
        small = ParameterDecoder(8, {"K": (16, 16)}, hidden=(16, 32), rng=rng)
        # decoder size is independent of how many sensors use it
        theta_many = Tensor(rng.standard_normal((1000, 8)))
        out = small(theta_many)["K"]
        assert out.shape == (1000, 16, 16)
        assert small.num_parameters() < 1000 * 16 * 16  # far fewer than naive
