"""Command-line entry points (python -m repro, python -m repro.harness)."""

from __future__ import annotations

import pytest

import repro.__main__ as train_cli
from repro.harness.__main__ import main as harness_main
from repro.harness.summary import main as summary_main


class TestTrainCLI:
    def test_trains_and_reports(self, capsys):
        code = train_cli.main(
            [
                "--model", "gru", "--dataset", "PEMS08", "--epochs", "1",
                "--max-batches", "2", "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "test: MAE=" in out

    def test_checkpoint_written(self, tmp_path, capsys):
        target = tmp_path / "model.npz"
        code = train_cli.main(
            [
                "--model", "gru", "--dataset", "PEMS08", "--epochs", "1",
                "--max-batches", "2", "--quiet", "--checkpoint", str(target),
            ]
        )
        assert code == 0
        assert target.exists()

    def test_non_trained_model(self, capsys):
        code = train_cli.main(["--model", "persistence", "--dataset", "PEMS08", "--quiet"])
        assert code == 0
        assert "MAE=" in capsys.readouterr().out

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            train_cli.main(["--model", "nope", "--dataset", "PEMS08", "--quiet"])


class TestHarnessCLI:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            harness_main(["tableX"])

    def test_runs_one_experiment(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCOPE", "smoke")
        code = harness_main(["table11", "--scope", "smoke", "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "table11.txt").exists()
        assert "table11" in capsys.readouterr().out

    def test_profile_subcommand(self, tmp_path, capsys):
        code = harness_main(["profile", "gru", "--scope", "smoke", "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "profile_gru.json").exists()
        assert (tmp_path / "profile_gru.txt").exists()
        out = capsys.readouterr().out
        assert "linear" in out  # top-op table printed (GRU gates use the fused linear)

    def test_profile_requires_model(self):
        with pytest.raises(SystemExit):
            harness_main(["profile"])


class TestSummaryCLI:
    def test_usage_error(self, capsys):
        assert summary_main([]) == 2

    def test_splices(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table8.txt").write_text("content\n")
        md = tmp_path / "EXPERIMENTS.md"
        md.write_text("<!-- TABLE8_MEASURED -->\n")
        assert summary_main([str(results), str(md)]) == 0
        assert "content" in md.read_text()
