"""Analytic memory model: asymptotics, Table VI OOM boundary, capacity plans."""

from __future__ import annotations

import pytest

from repro.training.memory import (
    CapacityPlanner,
    ModelDims,
    V100_BUDGET_GB,
    activation_gb,
    families,
    fits_in_budget,
    parameter_gb,
)


class TestFormulas:
    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            activation_gb("quantum", ModelDims())

    def test_all_families_positive(self):
        dims = ModelDims()
        for family in families():
            assert activation_gb(family, dims) > 0

    def test_attention_quadratic_in_history(self):
        small = activation_gb("attention", ModelDims(history=12))
        large = activation_gb("attention", ModelDims(history=120))
        assert large / small > 50  # ~quadratic: 100x dominates

    def test_window_attention_linear_in_history(self):
        small = activation_gb("window_attention", ModelDims(history=12))
        large = activation_gb("window_attention", ModelDims(history=120))
        assert large / small < 15  # ~linear: ~10x

    def test_stfgnn_quadratic_in_sensors(self):
        # at long horizons the fused-graph term dominates and scales ~N^2
        small = activation_gb("stfgnn", ModelDims(num_sensors=100, history=72))
        large = activation_gb("stfgnn", ModelDims(num_sensors=1000, history=72))
        assert large / small > 30  # clearly super-linear (linear would be ~10)

    def test_rnn_linear_in_sensors(self):
        small = activation_gb("rnn", ModelDims(num_sensors=100))
        large = activation_gb("rnn", ModelDims(num_sensors=1000))
        assert 8 < large / small < 12

    def test_parameter_memory(self):
        # 1M parameters * 4 bytes * 4 copies (w, g, m, v) = 16e6 bytes
        assert abs(parameter_gb(1_000_000) - 16e6 / 1024**3) < 1e-9


class TestTableVIBoundary:
    """The paper's OOM pattern: STFGNN & EnhanceNet die on PEMS07 at H=72."""

    @pytest.mark.parametrize(
        "family,sensors,history,expected_fits",
        [
            ("stfgnn", 883, 72, False),  # PEMS07 long-horizon: OOM
            ("enhancenet", 883, 72, False),  # PEMS07 long-horizon: OOM
            ("agcrn", 883, 72, True),  # AGCRN survives (barely)
            ("window_attention", 883, 72, True),  # ST-WA is fine
            ("stfgnn", 358, 72, True),  # PEMS03 long-horizon fits
            ("enhancenet", 358, 72, True),
            ("stfgnn", 883, 12, True),  # everything fits at H=12
            ("enhancenet", 883, 12, True),
        ],
    )
    def test_oom_pattern(self, family, sensors, history, expected_fits):
        dims = ModelDims(num_sensors=sensors, history=history, horizon=history)
        assert fits_in_budget(family, dims, V100_BUDGET_GB) == expected_fits

    def test_st_wa_has_smallest_footprint_at_scale(self):
        dims = ModelDims(num_sensors=883, history=72, horizon=72)
        st_wa = activation_gb("window_attention", dims)
        for family in ("attention", "stfgnn", "enhancenet", "agcrn"):
            assert st_wa < activation_gb(family, dims)

    def test_per_sensor_family_linear_in_sensors(self):
        small = activation_gb("per_sensor", ModelDims(num_sensors=1_000))
        large = activation_gb("per_sensor", ModelDims(num_sensors=10_000))
        assert large / small == pytest.approx(10.0, rel=1e-9)


class TestCapacityPlanner:
    """Shard plans over the registered zoo (see repro.harness.capacity)."""

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError, match="budget_gb"):
            CapacityPlanner(budget_gb=0.0)
        with pytest.raises(KeyError, match="unknown family"):
            CapacityPlanner().family_gb("quantum", 100)
        with pytest.raises(ValueError, match="num_sensors"):
            CapacityPlanner().plan("simst", 0)

    def test_bytes_per_element_scales_estimates(self):
        float32 = CapacityPlanner(bytes_per_element=4)
        float64 = CapacityPlanner(bytes_per_element=8)
        ratio = float64.family_gb("per_sensor", 5_000) / float32.family_gb(
            "per_sensor", 5_000
        )
        assert ratio == pytest.approx(2.0, rel=1e-12)

    def test_fitting_model_needs_one_shard(self):
        plan = CapacityPlanner().plan("simst", 10_000)
        assert plan.family == "per_sensor"
        assert plan.fits and plan.shards_needed == 1
        assert plan.sensor_shardable

    def test_shard_solver_uses_ceil_split(self):
        """shards_needed is the smallest K whose ceil(N/K)-sensor step fits."""
        planner = CapacityPlanner()
        num_sensors = 10_000
        budget = planner.family_gb("per_sensor", num_sensors) / 3.5
        tight = CapacityPlanner(budget_gb=budget)
        plan = tight.plan("simst", num_sensors)
        assert not plan.fits
        k = plan.shards_needed
        assert k is not None and k > 1
        per_shard = -(-num_sensors // k)
        assert tight.family_gb("per_sensor", per_shard) <= budget
        previous = -(-num_sensors // (k - 1))
        assert tight.family_gb("per_sensor", previous) > budget

    def test_quadratic_families_cannot_be_saved_by_sharding(self):
        plan = CapacityPlanner().plan("stfgnn", 50_000)
        assert not plan.fits
        assert not plan.sensor_shardable

    def test_st_wa_not_sensor_shardable(self):
        plan = CapacityPlanner().plan("st-wa", 10_000)
        assert plan.family == "window_attention"
        assert not plan.sensor_shardable

    def test_report_structure(self):
        report = CapacityPlanner().report(
            models=("simst", "st-wa"), sensor_counts=(100, 10_000)
        )
        assert report["sensor_counts"] == [100, 10_000]
        assert set(report["models"]) == {"simst", "st-wa"}
        for per_count in report["models"].values():
            assert set(per_count) == {"100", "10000"}
            for plan in per_count.values():
                assert {
                    "model", "family", "num_sensors", "activation_gb",
                    "bytes_per_sensor", "fits", "shards_needed",
                    "sensor_shardable",
                } <= set(plan)

    def test_plan_round_trips_to_dict(self):
        plan = CapacityPlanner().plan("simst", 2_000)
        payload = plan.to_dict()
        assert payload["model"] == "simst"
        assert payload["num_sensors"] == 2_000
        assert payload["fits"] is True
