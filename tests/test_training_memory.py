"""Analytic memory model: asymptotics and the Table VI OOM boundary."""

from __future__ import annotations

import pytest

from repro.training.memory import (
    ModelDims,
    V100_BUDGET_GB,
    activation_gb,
    families,
    fits_in_budget,
    parameter_gb,
)


class TestFormulas:
    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            activation_gb("quantum", ModelDims())

    def test_all_families_positive(self):
        dims = ModelDims()
        for family in families():
            assert activation_gb(family, dims) > 0

    def test_attention_quadratic_in_history(self):
        small = activation_gb("attention", ModelDims(history=12))
        large = activation_gb("attention", ModelDims(history=120))
        assert large / small > 50  # ~quadratic: 100x dominates

    def test_window_attention_linear_in_history(self):
        small = activation_gb("window_attention", ModelDims(history=12))
        large = activation_gb("window_attention", ModelDims(history=120))
        assert large / small < 15  # ~linear: ~10x

    def test_stfgnn_quadratic_in_sensors(self):
        # at long horizons the fused-graph term dominates and scales ~N^2
        small = activation_gb("stfgnn", ModelDims(num_sensors=100, history=72))
        large = activation_gb("stfgnn", ModelDims(num_sensors=1000, history=72))
        assert large / small > 30  # clearly super-linear (linear would be ~10)

    def test_rnn_linear_in_sensors(self):
        small = activation_gb("rnn", ModelDims(num_sensors=100))
        large = activation_gb("rnn", ModelDims(num_sensors=1000))
        assert 8 < large / small < 12

    def test_parameter_memory(self):
        # 1M parameters * 4 bytes * 4 copies (w, g, m, v) = 16e6 bytes
        assert abs(parameter_gb(1_000_000) - 16e6 / 1024**3) < 1e-9


class TestTableVIBoundary:
    """The paper's OOM pattern: STFGNN & EnhanceNet die on PEMS07 at H=72."""

    @pytest.mark.parametrize(
        "family,sensors,history,expected_fits",
        [
            ("stfgnn", 883, 72, False),  # PEMS07 long-horizon: OOM
            ("enhancenet", 883, 72, False),  # PEMS07 long-horizon: OOM
            ("agcrn", 883, 72, True),  # AGCRN survives (barely)
            ("window_attention", 883, 72, True),  # ST-WA is fine
            ("stfgnn", 358, 72, True),  # PEMS03 long-horizon fits
            ("enhancenet", 358, 72, True),
            ("stfgnn", 883, 12, True),  # everything fits at H=12
            ("enhancenet", 883, 12, True),
        ],
    )
    def test_oom_pattern(self, family, sensors, history, expected_fits):
        dims = ModelDims(num_sensors=sensors, history=history, horizon=history)
        assert fits_in_budget(family, dims, V100_BUDGET_GB) == expected_fits

    def test_st_wa_has_smallest_footprint_at_scale(self):
        dims = ModelDims(num_sensors=883, history=72, horizon=72)
        st_wa = activation_gb("window_attention", dims)
        for family in ("attention", "stfgnn", "enhancenet", "agcrn"):
            assert st_wa < activation_gb(family, dims)
