"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticTrafficConfig, TrafficSimulator
from repro.data.datasets import TrafficDataset
from repro.data.scalers import StandardScaler
from repro.data.windows import chronological_split


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset() -> TrafficDataset:
    """A very small but structurally complete traffic dataset (shared)."""
    config = SyntheticTrafficConfig(num_sensors=8, num_days=6, num_corridors=2, seed=7)
    simulator = TrafficSimulator(config)
    flows = simulator.generate()
    train_raw, val_raw, test_raw = chronological_split(flows)
    scaler = StandardScaler().fit(train_raw)
    return TrafficDataset(
        name="TINY",
        profile="test",
        train=scaler.transform(train_raw),
        val=scaler.transform(val_raw),
        test=scaler.transform(test_raw),
        train_raw=train_raw,
        val_raw=val_raw,
        test_raw=test_raw,
        scaler=scaler,
        network=simulator.network,
    )
