"""Shared fixtures for the test suite.

Besides the dataset fixtures, this file enforces two suite-wide
invariants (see DESIGN.md, "Testing strategy"):

* **Global-state isolation** — the tensor substrate keeps a small amount
  of process-global state (op-trace hook, anomaly check, grad-alloc hook,
  grad/inference mode flags, the active profiler).  An autouse fixture
  asserts every test leaves all of it at the documented clean defaults and
  restores them, so a leak fails the *offending* test instead of poisoning
  whichever test happens to run next.  The legacy ``np.random`` global
  state is snapshotted and restored for the same reason.
* **Per-test time budget** — any single test call longer than
  ``--max-test-seconds`` (default 60) fails the session, keeping the
  tier-1 suite honest about wall time.  Genuinely long scenarios belong
  behind the ``slow`` marker so ``pytest -m "not slow"`` stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticTrafficConfig, TrafficSimulator
from repro.data.datasets import TrafficDataset
from repro.data.scalers import StandardScaler
from repro.data.windows import chronological_split


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset() -> TrafficDataset:
    """A very small but structurally complete traffic dataset (shared)."""
    config = SyntheticTrafficConfig(num_sensors=8, num_days=6, num_corridors=2, seed=7)
    simulator = TrafficSimulator(config)
    flows = simulator.generate()
    train_raw, val_raw, test_raw = chronological_split(flows)
    scaler = StandardScaler().fit(train_raw)
    return TrafficDataset(
        name="TINY",
        profile="test",
        train=scaler.transform(train_raw),
        val=scaler.transform(val_raw),
        test=scaler.transform(test_raw),
        train_raw=train_raw,
        val_raw=val_raw,
        test_raw=test_raw,
        scaler=scaler,
        network=simulator.network,
    )


# --------------------------------------------------------------------- #
# global-state isolation guard
# --------------------------------------------------------------------- #
def _global_state_leaks() -> list:
    """Deviations from the documented clean defaults, as readable labels."""
    from repro.obs import profiler as profiler_module
    from repro.tensor import ops as tensor_ops
    from repro.tensor import tensor as tensor_core

    leaks = []
    if tensor_ops._trace_hook is not None:
        leaks.append("op-trace hook still installed (set_op_trace)")
    if tensor_ops._anomaly_check is not None:
        leaks.append("anomaly check still installed (set_anomaly_check)")
    if tensor_ops._op_capture is not None:
        leaks.append("op-capture recorder still installed (set_op_capture)")
    if tensor_core._grad_alloc_hook is not None:
        leaks.append("grad-alloc hook still installed (set_grad_alloc_hook)")
    if tensor_core._state.grad_enabled is not True:
        leaks.append("gradients left disabled (no_grad not unwound)")
    if tensor_core._state.inference_mode is not False:
        leaks.append("inference_mode left active")
    if profiler_module._active is not None:
        leaks.append("a profiler is still active (profile() not unwound)")
    return leaks


def _reset_global_state() -> None:
    from repro.obs import profiler as profiler_module
    from repro.tensor import ops as tensor_ops
    from repro.tensor import tensor as tensor_core

    tensor_ops.set_op_trace(None)
    tensor_ops.set_anomaly_check(None)
    tensor_ops.set_op_capture(None)
    tensor_core.set_grad_alloc_hook(None)
    tensor_core._state.grad_enabled = True
    tensor_core._state.inference_mode = False
    profiler_module._active = None


@pytest.fixture(autouse=True)
def _global_state_guard():
    """Fail any test that leaks tensor/profiler global state; then restore."""
    pre_existing = _global_state_leaks()
    if pre_existing:  # never blame this test for an earlier escape
        _reset_global_state()
    legacy_rng_state = np.random.get_state()
    yield
    leaks = _global_state_leaks()
    _reset_global_state()
    np.random.set_state(legacy_rng_state)
    assert not leaks, (
        "test leaked process-global state: " + "; ".join(leaks)
    )


# --------------------------------------------------------------------- #
# per-test time budget
# --------------------------------------------------------------------- #
def pytest_addoption(parser):
    parser.addoption(
        "--max-test-seconds",
        type=float,
        default=60.0,
        help="fail the run if any single test call exceeds this many seconds",
    )


def pytest_configure(config):
    config._overtime_tests = []


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call":
        budget = item.config.getoption("--max-test-seconds")
        if budget and report.duration > budget:
            item.config._overtime_tests.append((report.nodeid, report.duration))


def pytest_sessionfinish(session, exitstatus):
    overtime = getattr(session.config, "_overtime_tests", [])
    if overtime and session.exitstatus == 0:
        session.exitstatus = 1


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    overtime = getattr(config, "_overtime_tests", [])
    if overtime:
        budget = config.getoption("--max-test-seconds")
        terminalreporter.write_sep("=", f"tests over the {budget:.0f}s budget", red=True)
        for nodeid, duration in sorted(overtime, key=lambda item: -item[1]):
            terminalreporter.write_line(f"{duration:7.1f}s  {nodeid}")
        terminalreporter.write_line(
            "mark genuinely long scenarios with @pytest.mark.slow and keep "
            "them under the budget, or split them"
        )
