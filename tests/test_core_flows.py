"""Normalizing-flow latents (the paper's future-work extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FlowSTLatent, PlanarFlow, make_flow_st_wa
from repro.tensor import Tensor
from repro.tensor.gradcheck import check_gradients


class TestPlanarFlow:
    def test_output_shapes(self, rng):
        flow = PlanarFlow(4, rng=rng)
        z = Tensor(rng.standard_normal((3, 5, 4)))
        z_next, log_det = flow(z)
        assert z_next.shape == (3, 5, 4)
        assert log_det.shape == (3, 5)

    def test_log_det_finite(self, rng):
        flow = PlanarFlow(4, rng=rng)
        z = Tensor(rng.standard_normal((100, 4)) * 10)
        _, log_det = flow(z)
        assert np.all(np.isfinite(log_det.numpy()))

    def test_invertibility_condition_holds(self, rng):
        """wᵀû >= -1 guarantees |1 + ûᵀψ| > 0 everywhere."""
        for seed in range(5):
            flow = PlanarFlow(6, rng=np.random.default_rng(seed))
            flow.scale.data *= 100.0  # stress the constraint
            u_hat = flow._constrained_scale().numpy()
            wu = float(np.sum(flow.weight.numpy() * u_hat))
            assert wu >= -1.0 - 1e-9

    def test_transforms_distribution(self, rng):
        """After training-free application, output differs from input
        (u != 0 generically) but stays close for small parameters."""
        flow = PlanarFlow(4, rng=rng)
        z = rng.standard_normal((50, 4))
        z_next, _ = flow(Tensor(z))
        assert not np.allclose(z_next.numpy(), z)

    def test_gradients(self, rng):
        flow = PlanarFlow(3, rng=rng)
        z = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        check_gradients(lambda z_: flow(z_)[0], [z])
        check_gradients(lambda z_: flow(z_)[1], [z])

    def test_parameter_gradients(self, rng):
        flow = PlanarFlow(3, rng=rng)
        z = Tensor(rng.standard_normal((4, 3)))
        out, log_det = flow(z)
        (out.sum() + log_det.sum()).backward()
        assert flow.weight.grad is not None
        assert flow.scale.grad is not None
        assert flow.bias.grad is not None


class TestFlowSTLatent:
    def test_requires_at_least_one_flow(self, rng):
        with pytest.raises(ValueError):
            FlowSTLatent(4, 12, 1, 3, flow_layers=0, rng=rng)

    def test_theta_shape(self, rng):
        latent = FlowSTLatent(4, 12, 1, 3, flow_layers=2, rng=rng)
        theta = latent(Tensor(rng.standard_normal((2, 4, 12, 1))))
        assert theta.shape == (2, 4, 3)

    def test_mc_kl_finite_and_differentiable(self, rng):
        latent = FlowSTLatent(4, 12, 1, 3, flow_layers=2, rng=rng)
        latent(Tensor(rng.standard_normal((2, 4, 12, 1))))
        kl = latent.kl_divergence()
        assert kl is not None and np.isfinite(kl.item())
        kl.backward()
        assert latent.spatial.mu.grad is not None
        flow_weight = latent.flows[0].weight
        assert flow_weight.grad is not None

    def test_deterministic_mode_has_no_kl(self, rng):
        latent = FlowSTLatent(4, 12, 1, 3, flow_layers=1, deterministic=True, rng=rng)
        latent(Tensor(rng.standard_normal((1, 4, 12, 1))))
        assert latent.kl_divergence() is None

    def test_flow_output_differs_from_gaussian_base(self, rng):
        """The flows actually transform Θ (non-identity transform)."""
        from repro.core import STLatent

        gaussian = STLatent(4, 12, 1, 3, rng=np.random.default_rng(1))
        flowed = FlowSTLatent(4, 12, 1, 3, flow_layers=2, rng=np.random.default_rng(1))
        flowed.eval()
        gaussian.eval()
        # copy the shared base parameters so only the flows differ
        base_state = {k: v for k, v in gaussian.state_dict().items()}
        flow_state = flowed.state_dict()
        for key, value in base_state.items():
            flow_state[key] = value
        flowed.load_state_dict(flow_state)
        x = Tensor(rng.standard_normal((1, 4, 12, 1)))
        assert not np.allclose(gaussian(x).numpy(), flowed(x).numpy())


class TestFlowSTWA:
    def test_end_to_end(self, rng):
        model = make_flow_st_wa(5, model_dim=8, latent_dim=4, skip_dim=8, predictor_hidden=16, seed=1)
        x = Tensor(rng.standard_normal((2, 5, 12, 1)))
        out = model(x)
        assert out.shape == (2, 5, 12, 1)
        assert model.kl_divergence() is not None

    def test_trains(self, rng):
        from repro.optim import Adam
        from repro.core import STWALoss

        model = make_flow_st_wa(4, model_dim=8, latent_dim=4, skip_dim=8, predictor_hidden=16, seed=1)
        optimizer = Adam(model.parameters(), lr=5e-3)
        loss_fn = STWALoss(kl_weight=0.02)
        x = Tensor(rng.standard_normal((4, 4, 12, 1)))
        y = Tensor(rng.standard_normal((4, 4, 12, 1)) * 0.1)
        losses = []
        for _ in range(15):
            optimizer.zero_grad()
            loss = loss_fn(model(x), y, model=model)
            losses.append(loss.item())
            loss.backward()
            optimizer.step()
        assert losses[-1] < losses[0]
