"""Golden forecast regression: frozen eval-mode outputs must not drift.

The fixtures in ``tests/golden/*.npz`` pin the forecasts of ST-WA and two
baselines on a fixed dataset, batch, and seed.  A failure here means some
change moved the numbers — if that was intentional, regenerate with::

    PYTHONPATH=src python tools/regen_golden.py

and commit the updated fixtures alongside the change.  The build recipes
are imported from the regen tool itself, so the test can never check a
different model than the tool writes.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import numpy as np
import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

# allow tiny cross-platform BLAS reassociation, nothing more
RTOL = 1e-7
ATOL = 1e-9


def _load_regen_module():
    spec = importlib.util.spec_from_file_location(
        "regen_golden", REPO_ROOT / "tools" / "regen_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def regen():
    return _load_regen_module()


@pytest.fixture(scope="module")
def golden_dataset(regen):
    return regen.build_dataset()


class TestGoldenForecasts:
    def test_all_models_have_fixtures(self, regen):
        missing = [
            name
            for name in regen.GOLDEN_MODELS
            if not (GOLDEN_DIR / f"{name.replace('-', '_')}.npz").exists()
        ]
        assert not missing, (
            f"golden fixtures missing for {missing}; run tools/regen_golden.py"
        )

    @pytest.mark.parametrize("name", ["st-wa", "gru", "stgcn", "simst"])
    def test_forecast_matches_fixture(self, regen, golden_dataset, name):
        fixture = np.load(GOLDEN_DIR / f"{name.replace('-', '_')}.npz")
        assert str(fixture["model"]) == name
        prediction = regen.compute_forecast(name, golden_dataset)
        assert prediction.shape == fixture["prediction"].shape
        np.testing.assert_allclose(
            prediction,
            fixture["prediction"],
            rtol=RTOL,
            atol=ATOL,
            err_msg=(
                f"{name} forecast drifted from its golden fixture; if the "
                "numerical change is intentional, run tools/regen_golden.py"
            ),
        )

    def test_fixture_batch_matches_recipe(self, regen, golden_dataset):
        """The stored (x, y) batch is the one the recipe still produces."""
        name = regen.GOLDEN_MODELS[0]
        fixture = np.load(GOLDEN_DIR / f"{name.replace('-', '_')}.npz")
        x, y = regen.golden_batch(golden_dataset)
        np.testing.assert_allclose(fixture["x"], x, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(fixture["y"], y, rtol=RTOL, atol=ATOL)

    def test_forecasts_are_deterministic(self, regen, golden_dataset):
        a = regen.compute_forecast("st-wa", golden_dataset)
        b = regen.compute_forecast("st-wa", golden_dataset)
        np.testing.assert_array_equal(a, b)
