"""ST-aware TCN: the third family of the model-agnostic claim."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import STAwareTCN, STTCNConfig
from repro.tensor import Tensor, no_grad


SMALL = dict(channels=8, latent_dim=4, predictor_hidden=16, num_layers=2)


class TestSTAwareTCN:
    @pytest.mark.parametrize("mode", ["st", "spatial"])
    def test_output_shape(self, mode, rng):
        model = STAwareTCN(STTCNConfig(num_sensors=4, latent_mode=mode, seed=1, **SMALL))
        out = model(Tensor(rng.standard_normal((2, 4, 12, 1))))
        assert out.shape == (2, 4, 12, 1)

    def test_kl_exposed(self, rng):
        model = STAwareTCN(STTCNConfig(num_sensors=4, seed=1, **SMALL))
        model(Tensor(rng.standard_normal((2, 4, 12, 1))))
        assert model.kl_divergence() is not None

    def test_per_sensor_filters(self, rng):
        """Identical inputs at two sensors produce different outputs — the
        generated convolution filters are per sensor."""
        model = STAwareTCN(STTCNConfig(num_sensors=2, latent_mode="spatial", seed=1, **SMALL))
        model.eval()
        x_np = rng.standard_normal((1, 1, 12, 1))
        with no_grad():
            out = model(Tensor(np.repeat(x_np, 2, axis=1))).numpy()
        assert not np.allclose(out[0, 0], out[0, 1])

    def test_causality_of_generated_convolution(self, rng):
        """The generated filters are still applied causally: the model's
        internal temporal representation at step t ignores steps > t.  We
        check this indirectly — perturbing only the last input step changes
        the forecast (the head reads the last step), while a model fed a
        truncated-then-padded history behaves identically on the overlap."""
        model = STAwareTCN(STTCNConfig(num_sensors=3, latent_mode="spatial", seed=1, **SMALL))
        model.eval()
        x = rng.standard_normal((1, 3, 12, 1))
        with no_grad():
            base = model(Tensor(x)).numpy()
            perturbed = x.copy()
            perturbed[0, :, -1] += 5.0
            moved = model(Tensor(perturbed)).numpy()
        assert not np.allclose(base, moved)

    def test_gradients_reach_latent_and_decoder(self, rng):
        model = STAwareTCN(STTCNConfig(num_sensors=3, seed=1, **SMALL))
        out = model(Tensor(rng.standard_normal((2, 3, 12, 1))))
        out.sum().backward()
        assert model.latent.spatial.mu.grad is not None
        decoder_params = list(model.decoder.parameters())
        assert any(p.grad is not None for p in decoder_params)

    def test_trains(self, rng):
        from repro.optim import Adam
        from repro.tensor import functional as F

        model = STAwareTCN(STTCNConfig(num_sensors=3, seed=1, **SMALL))
        optimizer = Adam(model.parameters(), lr=5e-3)
        x = Tensor(rng.standard_normal((4, 3, 12, 1)))
        y = Tensor(rng.standard_normal((4, 3, 12, 1)) * 0.1)
        losses = []
        for _ in range(12):
            optimizer.zero_grad()
            loss = F.huber_loss(model(x), y)
            losses.append(loss.item())
            loss.backward()
            optimizer.step()
        assert losses[-1] < losses[0]
