"""Model-agnostic enhancements: STAwareTransformer and STAwareGRU (Table VII)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import STAttentionConfig, STAwareGRU, STAwareTransformer, STGRUConfig
from repro.tensor import Tensor


SMALL_ATT = dict(model_dim=8, latent_dim=4, predictor_hidden=16, num_layers=1)
SMALL_GRU = dict(hidden_size=8, latent_dim=4, predictor_hidden=16)


class TestSTAwareTransformer:
    @pytest.mark.parametrize("mode", ["st", "spatial"])
    def test_output_shape(self, mode, rng):
        model = STAwareTransformer(
            STAttentionConfig(num_sensors=4, latent_mode=mode, seed=1, **SMALL_ATT)
        )
        out = model(Tensor(rng.standard_normal((2, 4, 12, 1))))
        assert out.shape == (2, 4, 12, 1)

    def test_kl_exposed(self, rng):
        model = STAwareTransformer(STAttentionConfig(num_sensors=4, seed=1, **SMALL_ATT))
        model(Tensor(rng.standard_normal((2, 4, 12, 1))))
        assert model.kl_divergence() is not None

    def test_per_sensor_attention_parameters(self, rng):
        """Identical series at two sensors produce different outputs because
        each sensor's Q/K/V are generated from its own latent (Eq. 9)."""
        model = STAwareTransformer(
            STAttentionConfig(num_sensors=2, latent_mode="spatial", seed=1, **SMALL_ATT)
        )
        model.eval()
        x_np = rng.standard_normal((1, 1, 12, 1))
        x = Tensor(np.repeat(x_np, 2, axis=1))
        out = model(x).numpy()
        assert not np.allclose(out[0, 0], out[0, 1])

    def test_trainable(self, rng):
        from repro.optim import Adam
        from repro.tensor import functional as F

        model = STAwareTransformer(STAttentionConfig(num_sensors=3, seed=1, **SMALL_ATT))
        optimizer = Adam(model.parameters(), lr=5e-3)
        x = Tensor(rng.standard_normal((4, 3, 12, 1)))
        y = Tensor(rng.standard_normal((4, 3, 12, 1)) * 0.1)
        first = None
        for _ in range(25):
            optimizer.zero_grad()
            loss = F.huber_loss(model(x), y)
            if first is None:
                first = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first


class TestSTAwareGRU:
    @pytest.mark.parametrize("mode", ["st", "spatial"])
    def test_output_shape(self, mode, rng):
        model = STAwareGRU(STGRUConfig(num_sensors=4, latent_mode=mode, seed=1, **SMALL_GRU))
        out = model(Tensor(rng.standard_normal((2, 4, 12, 1))))
        assert out.shape == (2, 4, 12, 1)

    def test_kl_exposed(self, rng):
        model = STAwareGRU(STGRUConfig(num_sensors=4, seed=1, **SMALL_GRU))
        model(Tensor(rng.standard_normal((2, 4, 12, 1))))
        assert model.kl_divergence() is not None

    def test_per_sensor_gru_weights(self, rng):
        """The generated gate weights differ per sensor: identical inputs at
        two sensors produce different hidden trajectories."""
        model = STAwareGRU(STGRUConfig(num_sensors=2, latent_mode="spatial", seed=1, **SMALL_GRU))
        model.eval()
        x_np = rng.standard_normal((1, 1, 12, 1))
        x = Tensor(np.repeat(x_np, 2, axis=1))
        out = model(x).numpy()
        assert not np.allclose(out[0, 0], out[0, 1])

    def test_gradients_flow_to_latent(self, rng):
        model = STAwareGRU(STGRUConfig(num_sensors=3, seed=1, **SMALL_GRU))
        out = model(Tensor(rng.standard_normal((2, 3, 12, 1))))
        out.sum().backward()
        assert model.latent.spatial.mu.grad is not None
        assert np.abs(model.latent.spatial.mu.grad).sum() > 0
