"""Module system: registration, traversal, modes, state dicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, ModuleList, Parameter, ParameterList, Sequential
from repro.tensor import Tensor


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 3)))
        self.child = nn.Linear(3, 2, rng=np.random.default_rng(0))

    def forward(self, x):
        return self.child(x)


class TestRegistration:
    def test_parameters_found_recursively(self):
        toy = Toy()
        names = dict(toy.named_parameters())
        assert set(names) == {"weight", "child.weight", "child.bias"}

    def test_num_parameters(self):
        toy = Toy()
        assert toy.num_parameters() == 6 + 6 + 2

    def test_reassignment_replaces_entry(self):
        toy = Toy()
        toy.weight = Parameter(np.zeros((1,)))
        assert dict(toy.named_parameters())["weight"].size == 1

    def test_modules_iterates_descendants(self):
        toy = Toy()
        assert len(list(toy.modules())) == 2

    def test_register_dynamic(self):
        toy = Toy()
        toy.register_parameter("extra", Parameter(np.zeros(4)))
        toy.register_module("extra_module", nn.Linear(2, 2, rng=np.random.default_rng(0)))
        names = dict(toy.named_parameters())
        assert "extra" in names and "extra_module.weight" in names


class TestModes:
    def test_train_eval_propagate(self):
        toy = Toy()
        toy.eval()
        assert not toy.training and not toy.child.training
        toy.train()
        assert toy.training and toy.child.training

    def test_zero_grad_clears_all(self):
        toy = Toy()
        x = Tensor(np.ones((4, 3)))
        toy(x).sum().backward()
        assert any(p.grad is not None for p in toy.parameters())
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())


class TestStateDict:
    def test_roundtrip(self):
        a, b = Toy(), Toy()
        b.child.weight.data += 1.0
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(b.child.weight.data, a.child.weight.data)

    def test_state_dict_is_a_copy(self):
        toy = Toy()
        state = toy.state_dict()
        state["weight"][:] = 99.0
        assert not np.allclose(toy.weight.data, 99.0)

    def test_missing_key_raises(self):
        toy = Toy()
        state = toy.state_dict()
        del state["weight"]
        with pytest.raises(KeyError, match="missing"):
            toy.load_state_dict(state)

    def test_unexpected_key_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            toy.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["weight"] = np.zeros((9, 9))
        with pytest.raises(ValueError, match="shape"):
            toy.load_state_dict(state)


class TestContainers:
    def test_module_list(self):
        rng = np.random.default_rng(0)
        layers = ModuleList([nn.Linear(2, 2, rng=rng), nn.Linear(2, 2, rng=rng)])
        assert len(layers) == 2
        assert len(list(layers[0].named_parameters())) == 2
        assert sum(1 for _ in ModuleList().named_parameters()) == 0
        with pytest.raises(RuntimeError):
            layers(Tensor(np.zeros((1, 2))))

    def test_parameter_list(self):
        plist = ParameterList([Parameter(np.zeros(3)), Parameter(np.zeros(2))])
        assert len(plist) == 2
        assert plist[1].size == 2
        assert len(dict(plist.named_parameters())) == 2

    def test_sequential(self):
        rng = np.random.default_rng(0)
        seq = Sequential(nn.Linear(3, 4, rng=rng), nn.ReLU(), nn.Linear(4, 2, rng=rng))
        out = seq(Tensor(np.ones((5, 3))))
        assert out.shape == (5, 2)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor(np.zeros(1)))
