"""Fault tolerance: anomaly detection, checkpoint/resume, recovery, faults."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.baselines import GRUForecaster
from repro.data import WindowSpec, finite_mask, impute_series
from repro.harness import chaos
from repro.obs import ListSink, MetricsSink, SafeSink
from repro.optim import Adam, SGD, clip_grad_norm
from repro.resilience import (
    FaultInjector,
    LossExplosionError,
    NaNGradientFault,
    NumericalAnomalyError,
    ProcessKillFault,
    RecoveryPolicy,
    SimulatedCrash,
    detect_anomaly,
    inject_sensor_dropout,
)
from repro.tensor import Tensor, functional, is_anomaly_detection_enabled, masked_huber_loss
from repro.tensor import ops
from repro.training import Trainer, TrainerConfig, latest_checkpoint, list_checkpoints

SPEC = WindowSpec(12, 12)


def small_trainer(tiny_dataset, model=None, **config_overrides):
    config = dict(epochs=3, batch_size=16, max_batches_per_epoch=6, eval_batches=3, lr=6e-3, seed=0)
    config.update(config_overrides)
    if model is None:
        model = GRUForecaster(12, 12, hidden_size=8, predictor_hidden=32, seed=0)
    return Trainer(model, tiny_dataset, SPEC, TrainerConfig(**config))


# --------------------------------------------------------------------- #
# anomaly detection (repro.tensor)
# --------------------------------------------------------------------- #
class TestDetectAnomaly:
    def test_forward_anomaly_names_the_op(self):
        x = Tensor(np.array([1000.0]))
        with detect_anomaly():
            with pytest.raises(NumericalAnomalyError) as excinfo:
                ops.exp(x)  # overflows to inf
        assert excinfo.value.op_name == "exp"
        assert excinfo.value.phase == "forward"
        assert excinfo.value.kind == "inf"

    def test_backward_anomaly_carries_creation_trace(self):
        x = Tensor(np.array([1000.0]), requires_grad=True)
        with detect_anomaly(check_forward=False):
            u = ops.exp(x)  # inf, unchecked forward
            v = ops.sum(u * u)
            with pytest.raises(NumericalAnomalyError) as excinfo:
                v.backward()
        assert excinfo.value.phase == "backward"
        # the trace points at the forward line that built the node
        assert excinfo.value.creation_trace is not None
        assert "test_resilience" in excinfo.value.creation_trace

    def test_no_trace_when_disabled(self):
        x = Tensor(np.array([1000.0]), requires_grad=True)
        with detect_anomaly(check_forward=False, record_traces=False):
            u = ops.exp(x)
            v = ops.sum(u * u)
            with pytest.raises(NumericalAnomalyError) as excinfo:
                v.backward()
        assert excinfo.value.creation_trace is None

    def test_clean_graph_passes(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        with detect_anomaly():
            loss = ops.sum(ops.exp(x) * 2.0)
            loss.backward()
        np.testing.assert_allclose(x.grad, 2.0 * np.exp(x.data))

    def test_off_outside_context(self):
        assert not is_anomaly_detection_enabled()
        with detect_anomaly():
            assert is_anomaly_detection_enabled()
        assert not is_anomaly_detection_enabled()
        # anomalies pass silently when disabled
        ops.exp(Tensor(np.array([1000.0])))

    def test_subclasses_floating_point_error(self):
        assert issubclass(NumericalAnomalyError, FloatingPointError)
        assert issubclass(LossExplosionError, FloatingPointError)
        assert not issubclass(SimulatedCrash, FloatingPointError)


# --------------------------------------------------------------------- #
# optimizer guards + state dicts (repro.optim)
# --------------------------------------------------------------------- #
def _params(*values):
    from repro.nn.module import Parameter

    return [Parameter(np.array(v, dtype=np.float64)) for v in values]


class TestOptimizerGuards:
    def test_clip_grad_norm_nonfinite_skips_scaling(self):
        good, bad = _params([1.0, 1.0], [1.0])
        good.grad = np.array([3.0, 4.0])
        bad.grad = np.array([np.nan])
        norm = clip_grad_norm([good, bad], max_norm=1.0)
        assert np.isnan(norm)
        # the finite gradient must not have been scaled by nan
        np.testing.assert_array_equal(good.grad, [3.0, 4.0])

    def test_adam_skips_nonfinite_grad(self):
        good, bad = _params([1.0], [1.0])
        optimizer = Adam([good, bad], lr=0.1)
        good.grad = np.array([1.0])
        bad.grad = np.array([np.inf])
        optimizer.step()
        assert optimizer.nonfinite_skips == 1
        assert good.data[0] != 1.0  # updated
        assert bad.data[0] == 1.0  # untouched
        assert np.isfinite(bad.data).all()

    def test_sgd_skips_nonfinite_grad(self):
        (param,) = _params([2.0])
        optimizer = SGD([param], lr=0.1, momentum=0.9)
        param.grad = np.array([np.nan])
        optimizer.step()
        assert optimizer.nonfinite_skips == 1
        assert param.data[0] == 2.0

    def test_adam_state_roundtrip_continues_identically(self):
        def run(steps, reload_at=None):
            (param,) = _params([1.0, -1.0])
            optimizer = Adam([param], lr=0.05)
            state = None
            for step in range(steps):
                if reload_at is not None and step == reload_at:
                    state = optimizer.state_dict()
                    (param2,) = _params(param.data.tolist())
                    optimizer = Adam([param2], lr=0.9)  # wrong lr, overwritten
                    optimizer.load_state_dict(state)
                    param = param2
                param.grad = param.data * 0.5 + 0.1
                optimizer.step()
            return param.data

        np.testing.assert_array_equal(run(6), run(6, reload_at=3))

    def test_load_rejects_slot_count_mismatch(self):
        (a,) = _params([1.0])
        b, c = _params([1.0], [2.0])
        state = Adam([a], lr=0.1).state_dict()
        with pytest.raises(ValueError):
            Adam([b, c], lr=0.1).load_state_dict(state)


# --------------------------------------------------------------------- #
# SafeSink (repro.obs)
# --------------------------------------------------------------------- #
class _ExplodingSink(MetricsSink):
    def __init__(self):
        self.calls = 0

    def emit(self, event):
        self.calls += 1
        raise OSError("disk full")


class TestSafeSink:
    def test_warns_once_then_drops(self):
        inner = _ExplodingSink()
        sink = SafeSink(inner)
        with pytest.warns(RuntimeWarning, match="disk full"):
            sink.emit({"event": "batch"})
        assert sink.failed
        # no second warning, no second delivery attempt
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sink.emit({"event": "batch"})
        assert inner.calls == 1

    def test_trainer_survives_failing_sink(self, tiny_dataset):
        trainer = small_trainer(tiny_dataset, epochs=1, sink=_ExplodingSink())
        with pytest.warns(RuntimeWarning):
            history = trainer.fit()
        assert history.epochs_run == 1

    def test_healthy_sink_passes_through(self):
        inner = ListSink()
        sink = SafeSink(inner)
        sink.emit({"event": "epoch"})
        assert inner.events == [{"event": "epoch"}]


# --------------------------------------------------------------------- #
# degraded inputs: imputation + masked loss (repro.data / repro.tensor)
# --------------------------------------------------------------------- #
class TestImputation:
    def test_all_finite_is_identity(self, rng):
        data = rng.standard_normal((3, 5, 2))
        filled, mask = impute_series(data)
        np.testing.assert_array_equal(filled, data)
        assert mask.all()

    def test_last_value_carry_forward(self):
        data = np.array([[[1.0], [np.nan], [np.nan], [4.0], [np.nan]]])
        filled, mask = impute_series(data, method="last")
        np.testing.assert_array_equal(filled[0, :, 0], [1.0, 1.0, 1.0, 4.0, 4.0])
        np.testing.assert_array_equal(mask[0, :, 0], [1, 0, 0, 1, 0])

    def test_leading_gap_falls_back_to_zero(self):
        data = np.array([[[np.nan], [np.nan], [3.0]]])
        filled, _ = impute_series(data, method="last")
        np.testing.assert_array_equal(filled[0, :, 0], [0.0, 0.0, 3.0])

    def test_zero_method(self):
        data = np.array([[[np.nan], [2.0]]])
        filled, _ = impute_series(data, method="zero")
        np.testing.assert_array_equal(filled[0, :, 0], [0.0, 2.0])

    def test_rejects_unknown_method_and_shape(self):
        with pytest.raises(ValueError):
            impute_series(np.zeros((2, 2, 1)), method="spline")
        with pytest.raises(ValueError):
            impute_series(np.zeros((2, 2)))

    def test_finite_mask(self):
        mask = finite_mask(np.array([1.0, np.nan, np.inf]))
        np.testing.assert_array_equal(mask, [1.0, 0.0, 0.0])


class TestMaskedHuber:
    def test_matches_unmasked_when_finite(self, rng):
        prediction = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        target = Tensor(rng.standard_normal((4, 3)))
        masked = masked_huber_loss(prediction, target)
        plain = functional.huber_loss(prediction, target)
        np.testing.assert_allclose(masked.item(), plain.item())

    def test_nan_targets_contribute_nothing(self):
        prediction = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        target = Tensor(np.array([1.0, np.nan]))
        loss = masked_huber_loss(prediction, target)
        assert loss.item() == 0.0  # the only valid position is exact
        loss.backward()
        assert np.isfinite(prediction.grad).all()
        assert prediction.grad[1] == 0.0  # no gradient through the masked slot

    def test_all_masked_is_zero_loss(self):
        prediction = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        target = Tensor(np.full(2, np.nan))
        loss = masked_huber_loss(prediction, target)
        assert loss.item() == 0.0
        loss.backward()
        np.testing.assert_array_equal(prediction.grad, [0.0, 0.0])

    def test_explicit_mask_intersects_finite(self):
        prediction = Tensor(np.zeros(3))
        target = Tensor(np.array([1.0, 1.0, np.nan]))
        mask = np.array([1.0, 0.0, 1.0])  # third entry masked by finiteness too
        loss = masked_huber_loss(prediction, target, mask=mask)
        np.testing.assert_allclose(loss.item(), 0.5)  # one valid quadratic term


class TestSensorDropout:
    def test_degraded_dataset_shapes_and_masks(self, tiny_dataset):
        degraded = inject_sensor_dropout(tiny_dataset, rate=0.25, seed=3)
        assert degraded.train.shape == tiny_dataset.train.shape
        assert np.isnan(degraded.train_raw).any()  # raw keeps the gaps
        assert np.isfinite(degraded.train).all()  # scaled inputs are imputed
        assert np.isfinite(degraded.val).all()
        dead = np.isnan(degraded.train_raw).any(axis=(1, 2))
        assert 0 < dead.sum() < tiny_dataset.num_sensors

    def test_scaler_refit_on_imputed_data(self, tiny_dataset):
        degraded = inject_sensor_dropout(tiny_dataset, rate=0.25, seed=3)
        assert degraded.scaler is not tiny_dataset.scaler
        assert np.isfinite(degraded.scaler.mean)

    def test_no_imputation_poisons_inputs(self, tiny_dataset):
        poisoned = inject_sensor_dropout(tiny_dataset, rate=0.25, seed=3, impute_method=None)
        assert np.isnan(poisoned.train).any()
        assert poisoned.scaler is tiny_dataset.scaler

    def test_rate_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            inject_sensor_dropout(tiny_dataset, rate=1.5)

    def test_trains_through_masked_pipeline(self, tiny_dataset):
        degraded = inject_sensor_dropout(tiny_dataset, rate=0.25, seed=3)
        trainer = small_trainer(degraded, epochs=2)
        history = trainer.fit()
        assert all(np.isfinite(history.train_loss))
        assert all(np.isfinite(history.val_mae))


# --------------------------------------------------------------------- #
# checkpoint/resume bit-exactness (repro.training)
# --------------------------------------------------------------------- #
class TestResume:
    def test_kill_and_resume_is_bit_exact(self, tiny_dataset, tmp_path):
        ckpt_dir = tmp_path / "ckpt"
        interrupted = small_trainer(
            tiny_dataset,
            epochs=4,
            checkpoint_dir=ckpt_dir,
            batch_hook=FaultInjector([ProcessKillFault(epoch=2, batch=0)]),
        )
        with pytest.raises(SimulatedCrash):
            interrupted.fit()
        checkpoint = latest_checkpoint(ckpt_dir)
        assert checkpoint is not None and "0001" in checkpoint.name

        resumed_trainer = small_trainer(tiny_dataset, epochs=4)
        resumed = resumed_trainer.fit(resume_from=checkpoint)

        reference_trainer = small_trainer(tiny_dataset, epochs=4)
        reference = reference_trainer.fit()

        assert resumed.val_mae == reference.val_mae
        assert resumed.train_loss == reference.train_loss
        a = resumed_trainer.model.state_dict()
        b = reference_trainer.model.state_dict()
        assert set(a) == set(b)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_retention_keeps_last_and_best(self, tiny_dataset, tmp_path):
        ckpt_dir = tmp_path / "ckpt"
        trainer = small_trainer(tiny_dataset, epochs=5, checkpoint_dir=ckpt_dir, keep_last=2)
        trainer.fit()
        kept = list_checkpoints(ckpt_dir)
        assert [p.name for p in kept] == ["ckpt_epoch_0003.npz", "ckpt_epoch_0004.npz"]
        assert (ckpt_dir / "best.npz").exists()

    def test_no_checkpoint_dir_writes_nothing(self, tiny_dataset, tmp_path):
        trainer = small_trainer(tiny_dataset, epochs=1)
        trainer.fit()
        assert list(tmp_path.iterdir()) == []


# --------------------------------------------------------------------- #
# divergence recovery (repro.resilience + Trainer)
# --------------------------------------------------------------------- #
class TestRecovery:
    def test_nan_gradient_recovers_and_completes(self, tiny_dataset):
        sink = ListSink()
        trainer = small_trainer(
            tiny_dataset,
            epochs=3,
            sink=sink,
            recovery=RecoveryPolicy(),
            batch_hook=FaultInjector([NaNGradientFault(epoch=1, batch=1)]),
        )
        history = trainer.fit()
        assert history.epochs_run == 3
        assert history.recoveries == 1
        events = sink.of_type("recovery")
        assert len(events) == 1
        assert events[0]["error"] == "NumericalAnomalyError"
        assert events[0]["rollback_epoch"] == 0
        # lr was backed off by the policy
        assert events[0]["lr"] == pytest.approx(6e-3 * 0.5)
        assert trainer.optimizer.lr == pytest.approx(6e-3 * 0.5)

    def test_retries_are_bounded(self, tiny_dataset):
        # three separate faults at the same batch: each retry re-fires one
        faults = [NaNGradientFault(epoch=0, batch=0) for _ in range(3)]
        trainer = small_trainer(
            tiny_dataset,
            recovery=RecoveryPolicy(max_retries=2),
            batch_hook=FaultInjector(faults),
        )
        with pytest.raises(NumericalAnomalyError):
            trainer.fit()

    def test_without_policy_the_error_escapes(self, tiny_dataset):
        trainer = small_trainer(
            tiny_dataset, batch_hook=FaultInjector([NaNGradientFault(epoch=0, batch=0)])
        )
        with pytest.raises(NumericalAnomalyError):
            trainer.fit()

    def test_loss_explosion_rolls_back_weights(self, tiny_dataset):
        class WeightBomb:
            """Corrupt the weights mid-run; the next batch's loss explodes."""

            def __init__(self):
                self.fired = False

            def after_batch(self, trainer, epoch, batch):
                if not self.fired and epoch == 1 and batch == 0:
                    self.fired = True
                    for parameter in trainer.optimizer.parameters:
                        parameter.data = parameter.data * 1e4

        sink = ListSink()
        trainer = small_trainer(
            tiny_dataset,
            epochs=3,
            sink=sink,
            recovery=RecoveryPolicy(explosion_factor=5.0, min_history=3, window=10),
            batch_hook=WeightBomb(),
        )
        history = trainer.fit()
        assert history.epochs_run == 3
        assert history.recoveries >= 1
        events = sink.of_type("recovery")
        assert any(e["error"] == "LossExplosionError" for e in events)
        # the corrupted weights were rolled back: training ends sane
        assert np.isfinite(history.train_loss[-1])
        assert history.train_loss[-1] < 10.0

    def test_simulated_crash_is_never_swallowed(self, tiny_dataset):
        trainer = small_trainer(
            tiny_dataset,
            recovery=RecoveryPolicy(),
            batch_hook=FaultInjector([ProcessKillFault(epoch=0, batch=0)]),
        )
        with pytest.raises(SimulatedCrash):
            trainer.fit()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(lr_factor=1.5)
        with pytest.raises(ValueError):
            RecoveryPolicy(explosion_factor=0.5)
        assert RecoveryPolicy(min_lr=1e-4).backed_off_lr(1e-4) == 1e-4


class TestDetectAnomalyInTrainer:
    def test_trainer_runs_with_detection_on(self, tiny_dataset):
        trainer = small_trainer(tiny_dataset, epochs=1, detect_anomaly=True)
        history = trainer.fit()
        assert history.epochs_run == 1


# --------------------------------------------------------------------- #
# chaos harness (repro.harness.chaos)
# --------------------------------------------------------------------- #
class TestChaosHarness:
    def test_full_drill_suite_recovers(self, tmp_path):
        table, report = chaos.run(fast=True, out_dir=tmp_path, model_name="gru")
        assert report["all_recovered"]
        assert set(report["scenarios"]) == {"kill_resume", "nan_gradient", "sensor_dropout"}
        assert (tmp_path / "chaos_report.json").exists()
        assert table.experiment_id == "chaos"
        assert all(row[1] == "PASS" for row in table.rows)
