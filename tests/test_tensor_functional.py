"""Losses and variational utilities (Huber Eq. 21, Gaussian KL, reparam)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F
from repro.tensor.gradcheck import check_gradients


class TestHuberLoss:
    def test_quadratic_inside_threshold(self):
        pred, target = Tensor(np.array([0.5])), Tensor(np.array([0.0]))
        loss = F.huber_loss(pred, target, delta=1.0)
        np.testing.assert_allclose(loss.item(), 0.5 * 0.25)

    def test_linear_outside_threshold(self):
        pred, target = Tensor(np.array([3.0])), Tensor(np.array([0.0]))
        loss = F.huber_loss(pred, target, delta=1.0)
        np.testing.assert_allclose(loss.item(), 1.0 * (3.0 - 0.5))

    def test_continuous_at_threshold(self):
        delta = 0.7
        eps = 1e-9
        below = F.huber_loss(Tensor([delta - eps]), Tensor([0.0]), delta=delta).item()
        above = F.huber_loss(Tensor([delta + eps]), Tensor([0.0]), delta=delta).item()
        assert abs(below - above) < 1e-6

    def test_less_sensitive_to_outliers_than_mse(self, rng):
        target = Tensor(np.zeros(100))
        clean = Tensor(rng.standard_normal(100) * 0.1)
        outliers = clean.numpy().copy()
        outliers[0] = 50.0
        huber_increase = F.huber_loss(Tensor(outliers), target).item() - F.huber_loss(clean, target).item()
        mse_increase = F.mse_loss(Tensor(outliers), target).item() - F.mse_loss(clean, target).item()
        assert huber_increase < mse_increase

    def test_gradients(self, rng):
        pred = Tensor(rng.standard_normal((4, 5)) * 2, requires_grad=True)
        target = Tensor(rng.standard_normal((4, 5)))
        check_gradients(lambda p: F.huber_loss(p, target, delta=0.8), [pred])

    def test_zero_at_perfect_prediction(self, rng):
        data = rng.standard_normal((3, 3))
        assert F.huber_loss(Tensor(data), Tensor(data)).item() == 0.0


class TestBasicLosses:
    def test_mse(self):
        np.testing.assert_allclose(F.mse_loss(Tensor([2.0]), Tensor([0.0])).item(), 4.0)

    def test_mae(self):
        np.testing.assert_allclose(F.mae_loss(Tensor([-2.0]), Tensor([0.0])).item(), 2.0)

    def test_gradients(self, rng):
        pred = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        target = Tensor(rng.standard_normal((4, 3)))
        check_gradients(lambda p: F.mse_loss(p, target), [pred])


class TestGaussianKL:
    def test_standard_normal_has_zero_kl(self):
        mu = Tensor(np.zeros((5, 8)))
        log_var = Tensor(np.zeros((5, 8)))
        np.testing.assert_allclose(F.gaussian_kl(mu, log_var).item(), 0.0, atol=1e-12)

    def test_positive_for_nonstandard(self, rng):
        mu = Tensor(rng.standard_normal((5, 8)))
        log_var = Tensor(rng.standard_normal((5, 8)))
        assert F.gaussian_kl(mu, log_var).item() > 0.0

    def test_matches_closed_form(self):
        mu_value, log_var_value = 1.5, 0.3
        expected = 0.5 * (np.exp(log_var_value) + mu_value**2 - 1 - log_var_value)
        out = F.gaussian_kl(Tensor([[mu_value]]), Tensor([[log_var_value]])).item()
        np.testing.assert_allclose(out, expected)

    def test_gradients(self, rng):
        mu = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        log_var = Tensor(rng.standard_normal((3, 4)) * 0.3, requires_grad=True)
        check_gradients(F.gaussian_kl, [mu, log_var])

    def test_monotone_in_mean_magnitude(self):
        log_var = Tensor(np.zeros((1, 4)))
        small = F.gaussian_kl(Tensor(np.full((1, 4), 0.5)), log_var).item()
        large = F.gaussian_kl(Tensor(np.full((1, 4), 2.0)), log_var).item()
        assert large > small


class TestReparameterize:
    def test_sample_statistics(self):
        rng = np.random.default_rng(0)
        mu = Tensor(np.full((20000, 1), 2.0))
        log_var = Tensor(np.full((20000, 1), np.log(0.25)))
        sample = F.reparameterize(mu, log_var, rng=rng).numpy()
        np.testing.assert_allclose(sample.mean(), 2.0, atol=0.02)
        np.testing.assert_allclose(sample.std(), 0.5, atol=0.02)

    def test_gradient_flows_to_mu_and_log_var(self):
        mu = Tensor(np.zeros((4, 3)), requires_grad=True)
        log_var = Tensor(np.zeros((4, 3)), requires_grad=True)
        sample = F.reparameterize(mu, log_var, rng=np.random.default_rng(1))
        sample.sum().backward()
        assert mu.grad is not None and np.allclose(mu.grad, 1.0)
        assert log_var.grad is not None  # scaled by eps, nonzero in general

    def test_deterministic_with_fixed_rng(self):
        mu = Tensor(np.zeros((4, 3)))
        log_var = Tensor(np.zeros((4, 3)))
        a = F.reparameterize(mu, log_var, rng=np.random.default_rng(5)).numpy()
        b = F.reparameterize(mu, log_var, rng=np.random.default_rng(5)).numpy()
        np.testing.assert_array_equal(a, b)


class TestAttentionHelpers:
    def test_scores_are_row_stochastic(self, rng):
        q = Tensor(rng.standard_normal((2, 5, 4)))
        k = Tensor(rng.standard_normal((2, 5, 4)))
        scores = F.attention_scores(q, k).numpy()
        np.testing.assert_allclose(scores.sum(axis=-1), np.ones((2, 5)))

    def test_attention_output_shape(self, rng):
        q = Tensor(rng.standard_normal((2, 5, 4)))
        k = Tensor(rng.standard_normal((2, 7, 4)))
        v = Tensor(rng.standard_normal((2, 7, 6)))
        out = F.scaled_dot_product_attention(q, k, v)
        assert out.shape == (2, 5, 6)

    def test_attention_gradients(self, rng):
        q = Tensor(rng.standard_normal((5, 4)), requires_grad=True)
        k = Tensor(rng.standard_normal((5, 4)), requires_grad=True)
        v = Tensor(rng.standard_normal((5, 4)), requires_grad=True)
        check_gradients(F.scaled_dot_product_attention, [q, k, v])

    def test_linear_helper(self, rng):
        x = Tensor(rng.standard_normal((3, 4)))
        w = Tensor(rng.standard_normal((4, 2)))
        b = Tensor(rng.standard_normal(2))
        np.testing.assert_allclose(
            F.linear(x, w, b).numpy(), x.numpy() @ w.numpy() + b.numpy()
        )
