"""End-to-end integration: real training on synthetic traffic.

These are the slowest tests in the suite (tens of seconds total); they
verify the claims that define the reproduction rather than per-module
behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import make_st_wa, make_wa
from repro.data import BatchIterator, SlidingWindowDataset, WindowSpec
from repro.training import Trainer, TrainerConfig, load_checkpoint, save_checkpoint


SPEC = WindowSpec(12, 12)


def persistence_mae(dataset, max_batches=6) -> float:
    windows = SlidingWindowDataset(dataset.test, SPEC, raw=dataset.test_raw)
    iterator = BatchIterator(windows, batch_size=32, shuffle=False, max_batches=max_batches)
    errors = []
    for x, y in iterator:
        last = dataset.scaler.inverse_transform(x[:, :, -1:, :])
        prediction = np.repeat(last, SPEC.horizon, axis=2)
        errors.append(np.mean(np.abs(prediction - y)))
    return float(np.mean(errors))


@pytest.mark.slow
class TestEndToEnd:
    def test_st_wa_learns_traffic_structure(self, tiny_dataset):
        """After a modest training budget, ST-WA must beat the persistence
        baseline on held-out data — i.e. it learned real dynamics."""
        model = make_st_wa(
            tiny_dataset.num_sensors, model_dim=16, latent_dim=8, skip_dim=24, predictor_hidden=64, seed=0
        )
        config = TrainerConfig(lr=6e-3, epochs=25, batch_size=32, max_batches_per_epoch=20, eval_batches=6, patience=25, seed=0)
        trainer = Trainer(model, tiny_dataset, SPEC, config)
        history = trainer.fit()
        assert history.train_loss[-1] < history.train_loss[0]
        result = trainer.evaluate("test", max_batches=6)
        baseline = persistence_mae(tiny_dataset)
        assert result["mae"] < baseline * 1.15  # at least competitive with persistence
        assert result["mae"] < 2 * result["rmse"]  # metric sanity

    def test_training_improves_over_init(self, tiny_dataset):
        model = make_wa(tiny_dataset.num_sensors, model_dim=12, skip_dim=16, predictor_hidden=32, seed=0)
        trainer = Trainer(
            model,
            tiny_dataset,
            SPEC,
            TrainerConfig(lr=6e-3, epochs=8, batch_size=32, max_batches_per_epoch=12, eval_batches=4, seed=0),
        )
        before = trainer.evaluate("test", max_batches=4)["mae"]
        trainer.fit()
        after = trainer.evaluate("test", max_batches=4)["mae"]
        assert after < before

    def test_checkpoint_preserves_trained_accuracy(self, tiny_dataset, tmp_path):
        model = make_wa(tiny_dataset.num_sensors, model_dim=12, skip_dim=16, predictor_hidden=32, seed=0)
        trainer = Trainer(
            model,
            tiny_dataset,
            SPEC,
            TrainerConfig(lr=6e-3, epochs=4, batch_size=32, max_batches_per_epoch=10, eval_batches=4, seed=0),
        )
        trainer.fit()
        trained = trainer.evaluate("test", max_batches=4)["mae"]
        save_checkpoint(model, tmp_path / "model.npz", metadata={"mae": trained})

        fresh = make_wa(tiny_dataset.num_sensors, model_dim=12, skip_dim=16, predictor_hidden=32, seed=99)
        metadata = load_checkpoint(fresh, tmp_path / "model.npz")
        fresh_trainer = Trainer(fresh, tiny_dataset, SPEC, TrainerConfig(batch_size=32, seed=0))
        restored = fresh_trainer.evaluate("test", max_batches=4)["mae"]
        np.testing.assert_allclose(restored, trained, rtol=1e-9)
        assert metadata["mae"] == trained

    def test_kl_regularizer_active_during_training(self, tiny_dataset):
        """The KL term must contribute to the objective for ST-WA."""
        model = make_st_wa(
            tiny_dataset.num_sensors, model_dim=12, latent_dim=6, skip_dim=16, predictor_hidden=32, seed=0
        )
        trainer = Trainer(
            model,
            tiny_dataset,
            SPEC,
            TrainerConfig(lr=6e-3, epochs=1, batch_size=16, max_batches_per_epoch=3, eval_batches=2, kl_weight=0.5, seed=0),
        )
        trainer.fit()
        # after a forward pass the KL is retrievable and finite
        from repro.tensor import Tensor

        x, _ = SlidingWindowDataset(tiny_dataset.train, SPEC, raw=tiny_dataset.train_raw)[0]
        model.train()
        model(Tensor(x[None]))
        kl = model.kl_divergence()
        assert kl is not None and np.isfinite(kl.item())
