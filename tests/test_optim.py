"""Optimizers, gradient clipping, schedulers, early stopping."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.optim import (
    SGD,
    Adam,
    ConstantLR,
    CosineAnnealingLR,
    EarlyStopping,
    StepLR,
    clip_grad_norm,
)
from repro.tensor import Tensor, functional as F


def quadratic_problem(seed=0):
    """A convex problem: minimize ||w - target||^2."""
    rng = np.random.default_rng(seed)
    w = nn.Parameter(rng.standard_normal(10))
    target = rng.standard_normal(10)
    return w, target


def loss_of(w, target):
    diff = w - Tensor(target)
    return (diff * diff).sum()


class TestSGD:
    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_requires_positive_lr(self):
        w, _ = quadratic_problem()
        with pytest.raises(ValueError):
            SGD([w], lr=0.0)

    def test_converges_on_quadratic(self):
        w, target = quadratic_problem()
        opt = SGD([w], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss_of(w, target).backward()
            opt.step()
        np.testing.assert_allclose(w.numpy(), target, atol=1e-6)

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            w, target = quadratic_problem()
            opt = SGD([w], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                loss = loss_of(w, target)
                loss.backward()
                opt.step()
            losses[momentum] = loss.item()
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks_solution(self):
        w, target = quadratic_problem()
        opt = SGD([w], lr=0.1, weight_decay=1.0)
        for _ in range(300):
            opt.zero_grad()
            loss_of(w, target).backward()
            opt.step()
        assert np.linalg.norm(w.numpy()) < np.linalg.norm(target)

    def test_skips_parameters_without_grad(self):
        w, target = quadratic_problem()
        other = nn.Parameter(np.ones(3))
        opt = SGD([w, other], lr=0.1)
        opt.zero_grad()
        loss_of(w, target).backward()
        opt.step()
        np.testing.assert_array_equal(other.numpy(), np.ones(3))


class TestAdam:
    def test_invalid_betas(self):
        w, _ = quadratic_problem()
        with pytest.raises(ValueError):
            Adam([w], betas=(1.0, 0.9))

    def test_converges_on_quadratic(self):
        w, target = quadratic_problem()
        opt = Adam([w], lr=0.05)
        for _ in range(500):
            opt.zero_grad()
            loss_of(w, target).backward()
            opt.step()
        np.testing.assert_allclose(w.numpy(), target, atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        """Adam's bias correction makes the first step ~lr in each coordinate."""
        w = nn.Parameter(np.array([10.0]))
        opt = Adam([w], lr=0.1)
        (w * 1.0).sum().backward()
        opt.step()
        np.testing.assert_allclose(w.numpy(), [10.0 - 0.1], atol=1e-6)

    def test_trains_mlp_regression(self, rng):
        model = nn.MLP([2, 16, 1], rng=rng)
        opt = Adam(model.parameters(), lr=0.02)
        x = Tensor(rng.standard_normal((100, 2)))
        y = Tensor((x.numpy() ** 2).sum(axis=1, keepdims=True))
        first = None
        for _ in range(200):
            opt.zero_grad()
            loss = F.mse_loss(model(x), y)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < 0.1 * first


class TestClipGradNorm:
    def test_clips_large_gradient(self):
        w = nn.Parameter(np.zeros(4))
        w.grad = np.full(4, 10.0)
        norm = clip_grad_norm([w], max_norm=1.0)
        np.testing.assert_allclose(norm, 20.0)
        np.testing.assert_allclose(np.linalg.norm(w.grad), 1.0)

    def test_leaves_small_gradient(self):
        w = nn.Parameter(np.zeros(4))
        w.grad = np.full(4, 0.01)
        clip_grad_norm([w], max_norm=1.0)
        np.testing.assert_allclose(w.grad, 0.01)

    def test_ignores_missing_gradients(self):
        w = nn.Parameter(np.zeros(4))
        assert clip_grad_norm([w], max_norm=1.0) == 0.0


class TestSchedulers:
    def _opt(self):
        return SGD([nn.Parameter(np.zeros(1))], lr=1.0)

    def test_constant(self):
        sched = ConstantLR(self._opt())
        assert sched.step() == 1.0

    def test_step_lr(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [1.0, 0.5, 0.5, 0.25])

    def test_step_lr_validation(self):
        with pytest.raises(ValueError):
            StepLR(self._opt(), step_size=0)

    def test_cosine_endpoints(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, total_epochs=10, min_lr=0.1)
        for _ in range(10):
            last = sched.step()
        np.testing.assert_allclose(last, 0.1, atol=1e-9)

    def test_cosine_monotone_decreasing(self):
        sched = CosineAnnealingLR(self._opt(), total_epochs=20)
        lrs = [sched.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))


class TestEarlyStopping:
    def test_patience_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)

    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=3)
        assert not stopper.update(1.0, 0)
        assert not stopper.update(1.1, 1)
        assert not stopper.update(1.2, 2)
        assert stopper.update(1.3, 3)

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0, 0)
        stopper.update(1.1, 1)
        stopper.update(0.5, 2)  # improvement
        assert stopper.best == 0.5 and stopper.best_epoch == 2
        assert not stopper.update(0.6, 3)

    def test_min_delta(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1)
        stopper.update(1.0, 0)
        assert stopper.update(0.95, 1)  # improvement below min_delta ignored

    def test_improved_flag(self):
        stopper = EarlyStopping(patience=5)
        stopper.update(1.0, 0)
        assert stopper.improved_last_update
        stopper.update(2.0, 1)
        assert not stopper.improved_last_update
