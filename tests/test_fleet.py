"""Fleet lifecycle: registry, router, drift detector, manager."""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.baselines import GRUForecaster
from repro.baselines.classical import PersistenceForecaster
from repro.data.scalers import StandardScaler
from repro.fleet import (
    DriftDetector,
    DriftPolicy,
    FleetConfig,
    FleetManager,
    FleetRouter,
    ModelRegistry,
    RegistryError,
    RetrainPolicy,
    UnknownModelError,
    holdout_mae,
)
from repro.obs import ListSink
from repro.serve import ForecasterArtifact, ServeConfig

HISTORY = 8
HORIZON = 4
SENSORS = 5


def make_scaler(loc=100.0, scale=20.0) -> StandardScaler:
    scaler = StandardScaler()
    scaler.mean, scaler.std = loc, scale
    return scaler


def make_artifact(loc=100.0, history=HISTORY, horizon=HORIZON) -> ForecasterArtifact:
    """Persistence artifact; distinct ``loc`` gives a distinct model_id-free
    behaviour for shadow/A-B divergence (persistence itself is scaler-free,
    so differing behaviour comes from nothing — use GRU when weights must
    differ; use loc only as a label here)."""
    return ForecasterArtifact(
        PersistenceForecaster(history, horizon),
        scaler=make_scaler(loc),
        model_name="persistence",
        history=history,
        horizon=horizon,
    )


def make_gru_artifact(seed=0, history=HISTORY, horizon=HORIZON) -> ForecasterArtifact:
    model = GRUForecaster(history, horizon, hidden_size=4, predictor_hidden=8, seed=seed)
    return ForecasterArtifact(
        model,
        scaler=make_scaler(),
        model_name="gru",
        history=history,
        horizon=horizon,
    )


def raw_window(rng, sensors=SENSORS, history=HISTORY, features=1) -> np.ndarray:
    return 100.0 + 20.0 * rng.standard_normal((sensors, history, features))


def warm_router(router, model_id, rng, ticks=HISTORY):
    for _ in range(ticks):
        router.ingest(model_id, 100.0 + 20.0 * rng.standard_normal(SENSORS))


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
class TestModelRegistry:
    def test_publish_promote_load_roundtrip(self, tmp_path, rng):
        registry = ModelRegistry(tmp_path)
        artifact = make_gru_artifact(seed=0)
        version = registry.publish("city-a", artifact, metrics={"mae": 1.5}, promote=True)
        assert version == 1
        assert registry.models() == ["city-a"]
        assert registry.live_version("city-a") == 1
        assert [e["version"] for e in registry.versions("city-a")] == [1]
        assert [e["action"] for e in registry.history("city-a")] == ["publish", "promote"]

        loaded = registry.load("city-a", model=GRUForecaster(
            HISTORY, HORIZON, hidden_size=4, predictor_hidden=8, seed=9
        ))
        assert loaded.model_id == artifact.model_id
        assert loaded.registry_version == 1
        window = raw_window(rng)
        np.testing.assert_allclose(loaded.predict(window), artifact.predict(window))

    def test_unpromoted_publish_does_not_move_live(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish("m", make_artifact(), promote=True)
        registry.publish("m", make_artifact())
        assert registry.live_version("m") == 1
        assert len(registry.versions("m")) == 2

    def test_rollback_restores_previous_promoted(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish("m", make_artifact(), promote=True)
        v2 = registry.publish("m", make_artifact(), promote=True)
        assert registry.live_version("m") == v2
        assert registry.rollback("m") == 1
        assert registry.live_version("m") == 1
        # rolling back the rollback re-promotes v2
        assert registry.rollback("m") == 2

    def test_rollback_without_history_diagnoses(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(RegistryError, match="no model"):
            registry.rollback("ghost")
        registry.publish("m", make_artifact(), promote=True)
        with pytest.raises(RegistryError, match="no earlier promoted version"):
            registry.rollback("m")

    def test_unknown_version_names_known_ones(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish("m", make_artifact(), promote=True)
        with pytest.raises(RegistryError, match=r"no version 7 \(known versions: \[1\]\)"):
            registry.promote("m", 7)

    def test_load_without_live_version_diagnoses(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish("m", make_artifact())  # published, never promoted
        with pytest.raises(RegistryError, match="no live version"):
            registry.load("m")

    def test_invalid_model_id_rejected(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        for bad in ("", "../escape", "a/b", ".hidden"):
            with pytest.raises(RegistryError, match="not a valid registry key"):
                registry.publish(bad, make_artifact())


class TestRegistryCorruption:
    """Truncated/foreign/skewed manifests and vanished archives must
    diagnose themselves with found-vs-expected messages."""

    def _seeded(self, tmp_path) -> ModelRegistry:
        registry = ModelRegistry(tmp_path)
        registry.publish("m", make_artifact(), promote=True)
        return registry

    def test_truncated_manifest(self, tmp_path):
        registry = self._seeded(tmp_path)
        manifest = tmp_path / "m" / "MANIFEST.json"
        manifest.write_text(manifest.read_text()[: 40])
        with pytest.raises(RegistryError, match="corrupt or truncated"):
            registry.live_version("m")

    def test_foreign_json_manifest(self, tmp_path):
        registry = self._seeded(tmp_path)
        (tmp_path / "m" / "MANIFEST.json").write_text('{"hello": "world"}\n')
        with pytest.raises(RegistryError, match="missing 'schema' discriminator"):
            registry.versions("m")

    def test_schema_skew_names_found_and_expected(self, tmp_path):
        registry = self._seeded(tmp_path)
        manifest = tmp_path / "m" / "MANIFEST.json"
        data = json.loads(manifest.read_text())
        data["schema"] = 99
        manifest.write_text(json.dumps(data))
        with pytest.raises(RegistryError, match="schema version 99, expected 1"):
            registry.live_version("m")

    def test_missing_required_field(self, tmp_path):
        registry = self._seeded(tmp_path)
        manifest = tmp_path / "m" / "MANIFEST.json"
        data = json.loads(manifest.read_text())
        del data["next_version"]
        manifest.write_text(json.dumps(data))
        with pytest.raises(RegistryError, match="missing required field 'next_version'"):
            registry.versions("m")

    def test_missing_artifact_file(self, tmp_path):
        registry = self._seeded(tmp_path)
        (tmp_path / "m" / "v0001.npz").unlink()
        with pytest.raises(RegistryError, match="does not exist"):
            registry.load("m")

    def test_digest_mismatch_on_swapped_archive(self, tmp_path):
        registry = self._seeded(tmp_path)
        foreign = make_gru_artifact(seed=3)
        foreign.save(tmp_path / "m" / "v0001.npz")
        with pytest.raises(RegistryError, match="digest .* but the manifest recorded"):
            registry.load("m", model=GRUForecaster(
                HISTORY, HORIZON, hidden_size=4, predictor_hidden=8, seed=0
            ))

    def test_publish_refuses_to_clobber_corrupt_manifest(self, tmp_path):
        registry = self._seeded(tmp_path)
        manifest = tmp_path / "m" / "MANIFEST.json"
        manifest.write_text("{not json")
        with pytest.raises(RegistryError, match="corrupt or truncated"):
            registry.publish("m", make_artifact(), promote=True)
        assert manifest.read_text() == "{not json"  # untouched

    def test_missing_manifest_names_known_models(self, tmp_path):
        registry = self._seeded(tmp_path)
        with pytest.raises(RegistryError, match=r"known models: \['m'\]"):
            registry.live_version("ghost")


# --------------------------------------------------------------------------- #
# drift detector
# --------------------------------------------------------------------------- #
class TestDriftDetector:
    def test_calibrates_then_trips_once_on_shift(self):
        detector = DriftDetector(DriftPolicy(window=4, calibration=4, factor=1.5, min_samples=2))
        trips = [detector.record(1.0) for _ in range(6)]
        assert not any(trips)
        assert detector.calibrated and detector.effective_baseline == pytest.approx(1.0)
        trips = [detector.record(5.0) for _ in range(6)]
        assert trips.count(True) == 1  # edge-triggered, not level-triggered
        assert detector.check()["drifted"]

    def test_stable_stream_never_trips(self):
        detector = DriftDetector(DriftPolicy(window=4, calibration=4, factor=1.5, min_samples=2))
        assert not any(detector.record(2.0 + 0.1 * (i % 3)) for i in range(50))

    def test_explicit_baseline_skips_calibration(self):
        detector = DriftDetector(
            DriftPolicy(window=3, calibration=10, factor=2.0, min_samples=3), baseline=1.0
        )
        assert detector.calibrated
        assert [detector.record(5.0) for i in range(3)].count(True) == 1

    def test_reset_rearms(self):
        detector = DriftDetector(DriftPolicy(window=3, calibration=3, factor=1.5, min_samples=2))
        for _ in range(3):
            detector.record(1.0)
        assert any(detector.record(9.0) for _ in range(3))
        detector.reset()
        assert not detector.calibrated and not detector.check()["drifted"]
        for _ in range(3):
            assert not detector.record(9.0)  # recalibrates at the new level
        assert not detector.record(9.0)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DriftPolicy(window=0)
        with pytest.raises(ValueError):
            DriftPolicy(factor=1.0)
        with pytest.raises(ValueError):
            DriftPolicy(min_samples=0)


# --------------------------------------------------------------------------- #
# router
# --------------------------------------------------------------------------- #
def make_router(**overrides) -> FleetRouter:
    defaults = dict(
        max_inflight=4,
        drain_timeout_s=5.0,
        serve=ServeConfig(max_wait_ms=0.5, cooldown_s=0.02, deadline_ms=10_000.0),
        drift=DriftPolicy(window=4, calibration=4, factor=1.5, min_samples=2),
    )
    defaults.update(overrides)
    return FleetRouter(FleetConfig(**defaults))


class TestFleetRouter:
    def test_routes_by_model_id(self, rng):
        with make_router() as router:
            router.add_model("city-a", make_artifact(), SENSORS)
            router.add_model("city-b", make_gru_artifact(), SENSORS)
            warm_router(router, "city-a", rng)
            warm_router(router, "city-b", rng)
            a, b = router.forecast("city-a"), router.forecast("city-b")
            assert a.model_id == "city-a" and b.model_id == "city-b"
            assert a.ok and b.ok
            assert sorted(router.models()) == ["city-a", "city-b"]
            with pytest.raises(UnknownModelError):
                router.forecast("city-z")

    def test_duplicate_deploy_rejected(self):
        with make_router() as router:
            router.add_model("m", make_artifact(), SENSORS)
            with pytest.raises(ValueError, match="already deployed"):
                router.add_model("m", make_artifact(), SENSORS)

    def test_admission_sheds_over_capacity(self, rng):
        sink = ListSink()
        with make_router(max_inflight=1, sink=sink) as router:
            artifact = make_artifact()
            router.add_model("m", artifact, SENSORS)
            warm_router(router, "m", rng)
            hook = artifact.model.register_forward_pre_hook(
                lambda module, args: time.sleep(0.05)
            )
            try:
                results = []
                threads = [
                    threading.Thread(target=lambda: results.append(router.forecast("m")))
                    for _ in range(6)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            finally:
                hook.remove()
            sheds = [r for r in results if r.source == "shed"]
            assert sheds and len(results) == 6
            for shed in sheds:
                assert shed.arm == "shed" and shed.reason == "admission_overload"
                assert shed.forecast.shape == (SENSORS, HORIZON, 1)
            assert router.snapshot()["tenants"]["m"]["sheds"] == len(sheds)
            assert len(sink.of_type("fleet_shed")) == len(sheds)

    def test_hot_swap_is_zero_drop_under_load(self, rng):
        with make_router() as router:
            router.add_model("m", make_gru_artifact(seed=0), SENSORS, version=1)
            warm_router(router, "m", rng)
            results, errors = [], []
            stop = threading.Event()

            def client():
                while not stop.is_set():
                    try:
                        results.append(router.forecast("m"))
                    except Exception as error:  # pragma: no cover - the failure mode
                        errors.append(error)
                        return

            threads = [threading.Thread(target=client) for _ in range(4)]
            for t in threads:
                t.start()
            time.sleep(0.05)
            report = router.swap("m", make_gru_artifact(seed=1), version=2)
            time.sleep(0.05)
            stop.set()
            for t in threads:
                t.join()

            assert not errors
            assert report["drained"] and report["from_version"] == 1
            assert router.live_version("m") == 2
            assert {r.source for r in results} <= {"model", "cache", "fallback", "shed"}
            versions = {r.version for r in results}
            assert versions <= {1, 2}
            assert router.forecast("m").version == 2

    def test_swap_resets_drift(self, rng):
        with make_router() as router:
            router.add_model("m", make_artifact(), SENSORS)
            warm_router(router, "m", rng)
            # calibrate low, then drive the stream away from persistence
            for _ in range(6):
                router.forecast("m")
                router.ingest("m", 100.0 + 1.0 * rng.standard_normal(SENSORS))
            for _ in range(8):
                router.forecast("m")
                router.ingest("m", 300.0 + 1.0 * rng.standard_normal(SENSORS))
            assert router.drift_status("m")["drifted"]
            router.swap("m", make_artifact())
            assert not router.drift_status("m")["drifted"]

    def test_shadow_divergence_accumulates_off_path(self, rng):
        sink = ListSink()
        with make_router(sink=sink) as router:
            router.add_model("m", make_gru_artifact(seed=0), SENSORS, version=1)
            warm_router(router, "m", rng)
            router.start_shadow("m", make_gru_artifact(seed=1), version=7)
            for _ in range(5):
                router.ingest("m", 100.0 + 20.0 * rng.standard_normal(SENSORS))
                assert router.forecast("m").arm == "primary"  # shadow never serves
            assert router.drain_shadow(timeout_s=5.0)
            summary = router.stop_shadow("m")
            assert summary["version"] == 7
            assert summary["compared"] == 5
            assert summary["mean_mae"] > 0  # different seeds genuinely diverge
            events = sink.of_type("shadow_divergence")
            assert len(events) == 5
            assert events[0]["shadow_version"] == 7 and events[0]["primary_version"] == 1

    def test_promote_shadow_swaps_it_live(self, rng):
        with make_router() as router:
            router.add_model("m", make_gru_artifact(seed=0), SENSORS, version=1)
            warm_router(router, "m", rng)
            shadow = make_gru_artifact(seed=1)
            router.start_shadow("m", shadow, version=2)
            router.forecast("m")
            router.drain_shadow(timeout_s=5.0)
            report = router.promote_shadow("m")
            assert report["to_version"] == 2 and "shadow" in report
            assert router.live_artifact("m") is shadow
            assert router.stop_shadow("m")["compared"] == 0  # detached

    def test_ab_split_is_deterministic_and_concludable(self, rng):
        with make_router() as router:
            router.add_model("m", make_gru_artifact(seed=0), SENSORS, version=1)
            warm_router(router, "m", rng)
            router.set_ab("m", make_gru_artifact(seed=1), weight=0.25, version=2)
            arms = []
            for _ in range(16):
                arms.append(router.forecast("m").arm)
            # error diffusion: exactly weight * n requests on the candidate
            assert arms.count("candidate") == 4
            report = router.conclude_ab("m", promote=True)
            assert report["promoted"] and report["live_version"] == 2
            assert report["arms"]["candidate"]["requests"] == 4
            assert router.live_version("m") == 2
            with pytest.raises(ValueError, match="no A/B candidate"):
                router.conclude_ab("m", promote=False)

    def test_ab_weight_validation_and_single_candidate(self, rng):
        with make_router() as router:
            router.add_model("m", make_artifact(), SENSORS)
            warm_router(router, "m", rng)
            with pytest.raises(ValueError, match="weight must be in"):
                router.set_ab("m", make_artifact(), weight=1.0)
            router.set_ab("m", make_artifact(), weight=0.5)
            with pytest.raises(ValueError, match="already has an A/B candidate"):
                router.set_ab("m", make_artifact(), weight=0.5)

    def test_remove_model_and_close_idempotent(self, rng):
        router = make_router()
        router.add_model("m", make_artifact(), SENSORS)
        warm_router(router, "m", rng)
        router.remove_model("m")
        assert router.models() == []
        with pytest.raises(UnknownModelError):
            router.remove_model("m")
        router.close()
        router.close()  # second close is a no-op
        with pytest.raises(RuntimeError, match="closed"):
            router.add_model("m", make_artifact(), SENSORS)

    def test_events_are_stamped_with_tenant_identity(self, rng):
        sink = ListSink()
        with make_router(sink=sink) as router:
            router.add_model("m", make_artifact(), SENSORS, version=3)
            warm_router(router, "m", rng)
            router.forecast("m")
            stamped = [e for e in sink.events if e.get("tenant") == "m"]
            assert stamped
            engine_events = [e for e in stamped if e["event"] == "request"]
            assert engine_events and engine_events[0]["artifact_version"] == 3


# --------------------------------------------------------------------------- #
# manager
# --------------------------------------------------------------------------- #
class TestFleetManager:
    def _deploy(self, tmp_path, tiny_dataset):
        registry = ModelRegistry(tmp_path / "registry")
        artifact = make_gru_artifact(seed=0, history=HISTORY, horizon=HORIZON)
        registry.publish(
            "city", artifact, metrics={"mae": 1.0}, promote=True
        )
        router = make_router()
        manager = FleetManager(registry, router)
        manager.deploy(
            "city",
            num_sensors=tiny_dataset.num_sensors,
            model=GRUForecaster(HISTORY, HORIZON, hidden_size=4, predictor_hidden=8, seed=9),
        )
        for t in range(HISTORY):
            router.ingest("city", tiny_dataset.test_raw[:, t, 0])
        return registry, router, manager

    def test_deploy_stamps_registry_version(self, tmp_path, tiny_dataset):
        registry, router, manager = self._deploy(tmp_path, tiny_dataset)
        try:
            assert router.live_version("city") == 1
            assert router.live_artifact("city").registry_version == 1
        finally:
            router.close()

    def test_retrain_skipped_without_drift(self, tmp_path, tiny_dataset):
        registry, router, manager = self._deploy(tmp_path, tiny_dataset)
        try:
            report = manager.retrain("city", tiny_dataset)
            assert report["action"] == "skipped"
            assert registry.live_version("city") == 1
        finally:
            router.close()

    def test_forced_retrain_validates_publishes_and_swaps(self, tmp_path, tiny_dataset):
        registry, router, manager = self._deploy(tmp_path, tiny_dataset)
        try:
            policy = RetrainPolicy(
                epochs=1,
                max_batches=2,
                eval_batches=1,
                holdout_windows=2,
                accept_margin=10.0,  # a 1-epoch fine-tune must still win
            )
            report = manager.retrain("city", tiny_dataset, policy=policy, force=True)
            assert report["action"] == "swapped"
            assert report["candidate_version"] == 2
            assert np.isfinite(report["candidate_mae"]) and np.isfinite(report["live_mae"])
            assert registry.live_version("city") == 2
            assert router.live_version("city") == 2
            assert report["swap"]["drained"]
            # the audit trail: metrics landed in the registry entry
            entry = registry.versions("city")[-1]
            assert entry["metrics"]["holdout_mae"] == report["candidate_mae"]
            assert entry["labels"]["trigger"] == "forced"
        finally:
            router.close()

    def test_losing_candidate_is_published_but_never_serves(self, tmp_path, tiny_dataset):
        registry, router, manager = self._deploy(tmp_path, tiny_dataset)
        try:
            policy = RetrainPolicy(
                epochs=1, max_batches=1, eval_batches=1, holdout_windows=2,
                accept_margin=1e-9,  # impossible bar: candidate must lose
            )
            report = manager.retrain("city", tiny_dataset, policy=policy, force=True)
            assert report["action"] == "rejected"
            assert len(registry.versions("city")) == 2  # audit trail kept
            assert registry.live_version("city") == 1  # never promoted
            assert router.live_version("city") == 1  # never swapped
        finally:
            router.close()

    def test_rollback_redeploys_previous_version(self, tmp_path, tiny_dataset):
        registry, router, manager = self._deploy(tmp_path, tiny_dataset)
        try:
            second = make_gru_artifact(seed=1)
            registry.publish("city", second, promote=True)
            manager.deploy("city", model=GRUForecaster(
                HISTORY, HORIZON, hidden_size=4, predictor_hidden=8, seed=9
            ))
            assert router.live_version("city") == 2
            rolled = manager.rollback("city", model=GRUForecaster(
                HISTORY, HORIZON, hidden_size=4, predictor_hidden=8, seed=9
            ))
            assert rolled == 1
            assert router.live_version("city") == 1
        finally:
            router.close()

    def test_status_joins_router_and_registry(self, tmp_path, tiny_dataset):
        registry, router, manager = self._deploy(tmp_path, tiny_dataset)
        try:
            status = manager.status()
            assert status["city"]["registry_live"] == 1
            assert status["city"]["registry_versions"] == 1
            assert status["city"]["live_version"] == 1
        finally:
            router.close()


class TestHoldoutMae:
    def test_masks_nan_targets(self, tiny_dataset):
        artifact = make_artifact(history=HISTORY, horizon=HORIZON)
        policy = RetrainPolicy(holdout_windows=3)
        value = holdout_mae(artifact, tiny_dataset, policy)
        assert np.isfinite(value) and value >= 0

    def test_too_short_split_diagnoses(self, tiny_dataset):
        artifact = make_artifact(history=10_000, horizon=HORIZON)
        with pytest.raises(ValueError, match="too short"):
            holdout_mae(artifact, tiny_dataset, RetrainPolicy())
