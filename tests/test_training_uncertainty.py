"""Probabilistic forecasting from the stochastic latents."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import make_deterministic_st_wa, make_st_wa
from repro.data import SlidingWindowDataset, WindowSpec
from repro.training import interval_diagnostics, predict_interval, sample_forecasts


SMALL = dict(model_dim=8, latent_dim=4, skip_dim=8, predictor_hidden=16)


@pytest.fixture
def batch(tiny_dataset):
    windows = SlidingWindowDataset(tiny_dataset.train, WindowSpec(12, 12), raw=tiny_dataset.train_raw)
    x, y = windows.sample(np.arange(4))
    return x, y


class TestSampling:
    def test_validation(self, tiny_dataset, batch):
        model = make_st_wa(tiny_dataset.num_sensors, seed=0, **SMALL)
        with pytest.raises(ValueError):
            sample_forecasts(model, batch[0], tiny_dataset.scaler, num_samples=0)
        with pytest.raises(ValueError):
            predict_interval(model, batch[0], tiny_dataset.scaler, level=1.5)

    def test_sample_shape(self, tiny_dataset, batch):
        model = make_st_wa(tiny_dataset.num_sensors, seed=0, **SMALL)
        samples = sample_forecasts(model, batch[0], tiny_dataset.scaler, num_samples=5)
        assert samples.shape == (5, 4, tiny_dataset.num_sensors, 12, 1)

    def test_stochastic_model_varies_across_samples(self, tiny_dataset, batch):
        model = make_st_wa(tiny_dataset.num_sensors, seed=0, **SMALL)
        samples = sample_forecasts(model, batch[0], tiny_dataset.scaler, num_samples=4)
        assert not np.allclose(samples[0], samples[1])

    def test_deterministic_model_gives_identical_samples(self, tiny_dataset, batch):
        model = make_deterministic_st_wa(tiny_dataset.num_sensors, seed=0, **SMALL)
        samples = sample_forecasts(model, batch[0], tiny_dataset.scaler, num_samples=3)
        np.testing.assert_array_equal(samples[0], samples[1])

    def test_model_mode_restored(self, tiny_dataset, batch):
        model = make_st_wa(tiny_dataset.num_sensors, seed=0, **SMALL)
        model.eval()
        sample_forecasts(model, batch[0], tiny_dataset.scaler, num_samples=2)
        assert not model.training  # eval callers get their model back in eval
        model.train()
        sample_forecasts(model, batch[0], tiny_dataset.scaler, num_samples=2)
        assert model.training  # and training callers stay in training mode


class TestIntervals:
    def test_band_ordering(self, tiny_dataset, batch):
        model = make_st_wa(tiny_dataset.num_sensors, seed=0, **SMALL)
        forecast = predict_interval(model, batch[0], tiny_dataset.scaler, num_samples=10)
        assert np.all(forecast.lower <= forecast.median + 1e-12)
        assert np.all(forecast.median <= forecast.upper + 1e-12)
        assert np.all(forecast.width >= 0)

    def test_wider_level_wider_band(self, tiny_dataset, batch):
        model = make_st_wa(tiny_dataset.num_sensors, seed=0, **SMALL)
        narrow = predict_interval(model, batch[0], tiny_dataset.scaler, num_samples=16, level=0.5)
        wide = predict_interval(model, batch[0], tiny_dataset.scaler, num_samples=16, level=0.95)
        assert wide.width.mean() >= narrow.width.mean()

    def test_coverage_and_diagnostics(self, tiny_dataset, batch):
        model = make_st_wa(tiny_dataset.num_sensors, seed=0, **SMALL)
        forecast = predict_interval(model, batch[0], tiny_dataset.scaler, num_samples=8)
        diagnostics = interval_diagnostics(forecast, batch[1])
        assert 0.0 <= diagnostics["empirical_coverage"] <= 1.0
        assert diagnostics["mean_width"] >= 0
        assert diagnostics["nominal_level"] == 0.9

    def test_coverage_shape_mismatch_raises(self, tiny_dataset, batch):
        model = make_st_wa(tiny_dataset.num_sensors, seed=0, **SMALL)
        forecast = predict_interval(model, batch[0], tiny_dataset.scaler, num_samples=4)
        with pytest.raises(ValueError):
            forecast.coverage(np.zeros((1, 2, 3)))
