"""Scalers: statistics, round trips, leakage discipline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data import MinMaxScaler, StandardScaler


class TestStandardScaler:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros(3))
        with pytest.raises(RuntimeError):
            StandardScaler().inverse_transform(np.zeros(3))

    def test_transform_standardizes(self, rng):
        data = rng.standard_normal((10, 100, 1)) * 7 + 3
        out = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(out.mean(), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.std(), 1.0, atol=1e-12)

    def test_roundtrip(self, rng):
        data = rng.standard_normal((4, 50, 1)) * 3 + 10
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data, atol=1e-12)

    def test_constant_data_does_not_divide_by_zero(self):
        scaler = StandardScaler().fit(np.full((3, 4), 5.0))
        out = scaler.transform(np.full((3, 4), 5.0))
        assert np.all(np.isfinite(out))

    def test_statistics_frozen_after_fit(self, rng):
        """Transforming new (test) data must reuse training statistics."""
        train = rng.standard_normal(1000)
        scaler = StandardScaler().fit(train)
        shifted = train + 100
        out = scaler.transform(shifted)
        np.testing.assert_allclose(out.mean(), 100 / scaler.std + train.mean() * 0, atol=1.0)
        assert out.mean() > 50  # clearly not re-standardized


class TestMinMaxScaler:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros(3))

    def test_range(self, rng):
        data = rng.standard_normal((5, 40)) * 9
        out = MinMaxScaler().fit_transform(data)
        assert out.min() == 0.0 and out.max() == 1.0

    def test_roundtrip(self, rng):
        data = rng.standard_normal((5, 40))
        scaler = MinMaxScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data, atol=1e-12)

    def test_constant_data(self):
        scaler = MinMaxScaler().fit(np.full(5, 2.0))
        assert np.all(np.isfinite(scaler.transform(np.full(5, 2.0))))


@settings(max_examples=30, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(2, 5), st.integers(2, 20)),
        elements=st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
    )
)
def test_standard_scaler_roundtrip_property(data):
    scaler = StandardScaler().fit(data)
    recovered = scaler.inverse_transform(scaler.transform(data))
    np.testing.assert_allclose(recovered, data, atol=1e-6 * (1 + np.abs(data).max()))


@settings(max_examples=30, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(2, 5), st.integers(2, 20)),
        elements=st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
    )
)
def test_minmax_scaler_bounds_property(data):
    out = MinMaxScaler().fit_transform(data)
    assert out.min() >= -1e-9 and out.max() <= 1.0 + 1e-9
