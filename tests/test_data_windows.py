"""Sliding windows, chronological splits, batch iteration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import BatchIterator, SlidingWindowDataset, WindowSpec, chronological_split


def make_series(n=3, t=60, f=1):
    """Series whose value encodes its own (sensor, time) index."""
    data = np.zeros((n, t, f))
    for i in range(n):
        data[i, :, 0] = i * 1000 + np.arange(t)
    return data


class TestWindowSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            WindowSpec(0, 5)
        with pytest.raises(ValueError):
            WindowSpec(5, 0)


class TestSlidingWindowDataset:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            SlidingWindowDataset(np.zeros((3, 60)), WindowSpec(5, 5))

    def test_rejects_too_short_series(self):
        with pytest.raises(ValueError, match="too short"):
            SlidingWindowDataset(np.zeros((3, 9, 1)), WindowSpec(5, 5))

    def test_rejects_mismatched_raw(self):
        with pytest.raises(ValueError, match="raw"):
            SlidingWindowDataset(np.zeros((3, 20, 1)), WindowSpec(5, 5), raw=np.zeros((3, 19, 1)))

    def test_sample_count_matches_eq1(self):
        """Valid anchors: H-1 .. T-U-1 -> T - H - U + 1 samples (Eq. 1)."""
        dataset = SlidingWindowDataset(make_series(t=60), WindowSpec(12, 12))
        assert len(dataset) == 60 - 12 - 12 + 1

    def test_history_and_target_are_contiguous(self):
        dataset = SlidingWindowDataset(make_series(), WindowSpec(5, 3))
        x, y = dataset[0]
        np.testing.assert_array_equal(x[0, :, 0], np.arange(5))
        np.testing.assert_array_equal(y[0, :, 0], np.arange(5, 8))

    def test_last_window_reaches_series_end(self):
        data = make_series(t=30)
        dataset = SlidingWindowDataset(data, WindowSpec(5, 3))
        x, y = dataset[len(dataset) - 1]
        assert y[0, -1, 0] == data[0, -1, 0]

    def test_raw_targets_returned(self):
        scaled = make_series() / 100.0
        raw = make_series()
        dataset = SlidingWindowDataset(scaled, WindowSpec(5, 3), raw=raw)
        x, y = dataset[0]
        np.testing.assert_array_equal(y[0, :, 0], np.arange(5, 8))  # raw units
        np.testing.assert_allclose(x[0, :, 0], np.arange(5) / 100.0)  # scaled

    def test_batch_sample_shapes(self):
        dataset = SlidingWindowDataset(make_series(n=4), WindowSpec(6, 2))
        x, y = dataset.sample(np.array([0, 3, 7]))
        assert x.shape == (3, 4, 6, 1)
        assert y.shape == (3, 4, 2, 1)


class TestEdgeCases:
    def test_series_shorter_than_window(self):
        """A series shorter than the history window alone is unusable."""
        with pytest.raises(ValueError, match="too short"):
            SlidingWindowDataset(np.zeros((2, 4, 1)), WindowSpec(5, 3))

    def test_series_shorter_than_window_plus_horizon(self):
        # enough for the history but not the target
        with pytest.raises(ValueError, match="too short"):
            SlidingWindowDataset(np.zeros((2, 7, 1)), WindowSpec(5, 3))

    def test_exact_length_series_yields_one_window(self):
        data = make_series(t=8)  # T == H + U exactly
        dataset = SlidingWindowDataset(data, WindowSpec(5, 3))
        assert len(dataset) == 1
        x, y = dataset[0]
        np.testing.assert_array_equal(x[0, :, 0], np.arange(5))
        np.testing.assert_array_equal(y[0, :, 0], np.arange(5, 8))
        with pytest.raises(IndexError):
            dataset.sample(np.array([1]))

    def test_nan_tail_windows_preserved(self):
        """Dead-sensor NaNs in the tail flow through to the targets untouched.

        The masked-loss path downstream relies on seeing the NaNs; windowing
        must neither fill nor reject them.
        """
        data = make_series(t=20)
        data[0, -3:, 0] = np.nan  # sensor 0 dies for the last horizon steps
        dataset = SlidingWindowDataset(data, WindowSpec(5, 3))
        x_last, y_last = dataset[len(dataset) - 1]
        assert np.isnan(y_last[0]).all()  # targets keep the NaN tail
        assert np.isfinite(x_last[0]).all()  # history precedes the outage
        assert np.isfinite(y_last[1:]).all()  # other sensors unaffected
        x_first, y_first = dataset[0]
        assert np.isfinite(x_first).all() and np.isfinite(y_first).all()


class TestChronologicalSplit:
    def test_fractions_validated(self):
        data = make_series()
        with pytest.raises(ValueError):
            chronological_split(data, train_fraction=0.0)
        with pytest.raises(ValueError):
            chronological_split(data, train_fraction=0.8, val_fraction=0.3)

    def test_paper_fractions(self):
        data = make_series(t=100)
        train, val, test = chronological_split(data)
        assert train.shape[1] == 60 and val.shape[1] == 20 and test.shape[1] == 20

    def test_chronological_order_preserved(self):
        data = make_series(t=100)
        train, val, test = chronological_split(data)
        assert train[0, -1, 0] < val[0, 0, 0] < test[0, 0, 0]

    def test_no_overlap_and_full_coverage(self):
        data = make_series(t=97)
        train, val, test = chronological_split(data)
        joined = np.concatenate([train, val, test], axis=1)
        np.testing.assert_array_equal(joined, data)


class TestBatchIterator:
    def test_batch_size_validated(self):
        dataset = SlidingWindowDataset(make_series(), WindowSpec(5, 3))
        with pytest.raises(ValueError):
            BatchIterator(dataset, batch_size=0)

    def test_covers_every_sample_once(self):
        dataset = SlidingWindowDataset(make_series(t=40), WindowSpec(5, 3))
        iterator = BatchIterator(dataset, batch_size=7, shuffle=True, rng=np.random.default_rng(0))
        seen = []
        for x, _ in iterator:
            seen.extend(x[:, 0, 0, 0].tolist())  # first history value identifies the anchor
        assert len(seen) == len(dataset)
        assert len(set(seen)) == len(dataset)

    def test_len_accounts_for_max_batches(self):
        dataset = SlidingWindowDataset(make_series(t=40), WindowSpec(5, 3))
        assert len(BatchIterator(dataset, batch_size=7)) == int(np.ceil(len(dataset) / 7))
        assert len(BatchIterator(dataset, batch_size=7, max_batches=2)) == 2

    def test_max_batches_respected(self):
        dataset = SlidingWindowDataset(make_series(t=40), WindowSpec(5, 3))
        batches = list(BatchIterator(dataset, batch_size=4, max_batches=3))
        assert len(batches) == 3

    def test_no_shuffle_is_sequential(self):
        dataset = SlidingWindowDataset(make_series(t=40), WindowSpec(5, 3))
        x, _ = next(iter(BatchIterator(dataset, batch_size=4, shuffle=False)))
        np.testing.assert_array_equal(x[:, 0, 0, 0], [0, 1, 2, 3])

    def test_shuffle_deterministic_by_rng(self):
        dataset = SlidingWindowDataset(make_series(t=40), WindowSpec(5, 3))
        a = next(iter(BatchIterator(dataset, batch_size=4, rng=np.random.default_rng(3))))[0]
        b = next(iter(BatchIterator(dataset, batch_size=4, rng=np.random.default_rng(3))))[0]
        np.testing.assert_array_equal(a, b)


@settings(max_examples=25, deadline=None)
@given(
    history=st.integers(1, 8),
    horizon=st.integers(1, 8),
    extra=st.integers(0, 30),
)
def test_window_count_property(history, horizon, extra):
    """For any H, U, T: number of windows is T - H - U + 1."""
    total = history + horizon + extra
    data = np.zeros((2, total, 1))
    dataset = SlidingWindowDataset(data, WindowSpec(history, horizon))
    assert len(dataset) == extra + 1


@settings(max_examples=25, deadline=None)
@given(history=st.integers(2, 6), horizon=st.integers(1, 4), anchor=st.integers(0, 20))
def test_window_contiguity_property(history, horizon, anchor):
    """x ends exactly where y begins, for every anchor."""
    total = history + horizon + 25
    data = np.arange(total, dtype=float).reshape(1, total, 1)
    dataset = SlidingWindowDataset(data, WindowSpec(history, horizon))
    x, y = dataset[anchor]
    assert y[0, 0, 0] == x[0, -1, 0] + 1
