"""Checkpoint save/load round trips (model-only v1 and full-state v2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import make_st_wa
from repro.optim import Adam
from repro.tensor import Tensor, no_grad
from repro.training import (
    CheckpointError,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    load_training_checkpoint,
    prune_checkpoints,
    save_checkpoint,
    save_training_checkpoint,
)


class TestCheckpoint:
    def test_roundtrip_simple_model(self, tmp_path, rng):
        model = nn.MLP([4, 8, 2], rng=rng)
        path = save_checkpoint(model, tmp_path / "model.npz", metadata={"epoch": 7})
        clone = nn.MLP([4, 8, 2], rng=np.random.default_rng(99))
        metadata = load_checkpoint(clone, path)
        assert metadata == {"epoch": 7}
        x = Tensor(rng.standard_normal((3, 4)))
        np.testing.assert_array_equal(model(x).numpy(), clone(x).numpy())

    def test_roundtrip_full_st_wa(self, tmp_path, rng):
        model = make_st_wa(5, model_dim=8, latent_dim=4, skip_dim=8, predictor_hidden=16, seed=1)
        path = save_checkpoint(model, tmp_path / "stwa.npz")
        clone = make_st_wa(5, model_dim=8, latent_dim=4, skip_dim=8, predictor_hidden=16, seed=2)
        load_checkpoint(clone, path)
        model.eval()
        clone.eval()
        x = Tensor(rng.standard_normal((1, 5, 12, 1)))
        with no_grad():
            np.testing.assert_array_equal(model(x).numpy(), clone(x).numpy())

    def test_default_metadata_empty(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        path = save_checkpoint(model, tmp_path / "lin.npz")
        assert load_checkpoint(model, path) == {}

    def test_creates_parent_directories(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        path = save_checkpoint(model, tmp_path / "deep" / "nested" / "lin.npz")
        assert path.exists()

    def test_mismatched_architecture_raises(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        path = save_checkpoint(model, tmp_path / "lin.npz")
        wrong = nn.Linear(3, 2, rng=rng)
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(wrong, path)

    def test_write_is_atomic_no_temp_leftovers(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        save_checkpoint(model, tmp_path / "lin.npz")
        names = [p.name for p in tmp_path.iterdir()]
        assert names == ["lin.npz"]  # no .tmp residue

    def test_overwrite_replaces_existing(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        path = save_checkpoint(model, tmp_path / "lin.npz", metadata={"epoch": 1})
        assert load_checkpoint(model, path) == {"epoch": 1}
        path = save_checkpoint(model, tmp_path / "lin.npz", metadata={"epoch": 2})
        assert load_checkpoint(model, path) == {"epoch": 2}


class TestTrainingCheckpoint:
    def test_full_state_roundtrip(self, tmp_path, rng):
        model = nn.MLP([4, 8, 2], rng=rng)
        optimizer = Adam(model.parameters(), lr=3e-3)
        for parameter in optimizer.parameters:
            parameter.grad = rng.standard_normal(parameter.data.shape)
        optimizer.step()
        state = {
            "epoch": 3,
            "stopper": {"best": 1.25, "best_epoch": 2, "bad_epochs": 1},
            "rng": {"trainer": np.random.default_rng(5).bit_generator.state, "modules": {}},
            "history": {"val_mae": [2.0, 1.5, 1.25]},
        }
        path = save_training_checkpoint(
            tmp_path / "ckpt.npz",
            model_state=model.state_dict(),
            best_state=model.state_dict(),
            optimizer_state=optimizer.state_dict(),
            state=state,
        )
        ckpt = load_training_checkpoint(path)
        assert ckpt.epoch == 3
        assert ckpt.state["stopper"] == state["stopper"]
        assert ckpt.state["rng"]["trainer"] == state["rng"]["trainer"]
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(ckpt.model_state[name], value)
            np.testing.assert_array_equal(ckpt.best_state[name], value)
        clone = Adam(nn.MLP([4, 8, 2], rng=rng).parameters(), lr=0.1)
        clone.load_state_dict(ckpt.optimizer_state)
        assert clone.lr == 3e-3
        assert clone._step_count == 1

    def test_v1_archive_rejected_as_v2(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        path = save_checkpoint(model, tmp_path / "lin.npz")
        with pytest.raises(ValueError, match="schema version"):
            load_training_checkpoint(path)

    def test_version_mismatch_is_checkpoint_error(self, tmp_path, rng):
        """The clear-diagnosis contract: found vs expected, not a KeyError."""
        model = nn.Linear(2, 2, rng=rng)
        path = save_checkpoint(model, tmp_path / "lin.npz")
        with pytest.raises(CheckpointError, match=r"found.*expected|schema version"):
            load_training_checkpoint(path)

    def test_truncated_file_is_checkpoint_error(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        path = save_training_checkpoint(
            tmp_path / "ckpt.npz",
            model_state=model.state_dict(),
            best_state=model.state_dict(),
            optimizer_state=None,
            state={"epoch": 0},
        )
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="corrupt"):
            load_training_checkpoint(path)

    def test_garbage_file_is_checkpoint_error(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_training_checkpoint(path)

    def test_missing_file_is_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_training_checkpoint(tmp_path / "absent.npz")

    def test_checkpoint_error_is_value_error(self):
        # resume_from callers that caught ValueError keep working
        assert issubclass(CheckpointError, ValueError)

    def test_retention_helpers(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        for epoch in range(5):
            save_training_checkpoint(
                tmp_path / f"ckpt_epoch_{epoch:04d}.npz",
                model_state=model.state_dict(),
                best_state=model.state_dict(),
                optimizer_state=None,
                state={"epoch": epoch},
            )
        assert latest_checkpoint(tmp_path).name == "ckpt_epoch_0004.npz"
        removed = prune_checkpoints(tmp_path, keep_last=2)
        assert len(removed) == 3
        assert [p.name for p in list_checkpoints(tmp_path)] == [
            "ckpt_epoch_0003.npz",
            "ckpt_epoch_0004.npz",
        ]
        assert prune_checkpoints(tmp_path, keep_last=0) == []  # <=0 keeps all

    def test_latest_checkpoint_empty_dir(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
