"""Checkpoint save/load round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import make_st_wa
from repro.tensor import Tensor, no_grad
from repro.training import load_checkpoint, save_checkpoint


class TestCheckpoint:
    def test_roundtrip_simple_model(self, tmp_path, rng):
        model = nn.MLP([4, 8, 2], rng=rng)
        path = save_checkpoint(model, tmp_path / "model.npz", metadata={"epoch": 7})
        clone = nn.MLP([4, 8, 2], rng=np.random.default_rng(99))
        metadata = load_checkpoint(clone, path)
        assert metadata == {"epoch": 7}
        x = Tensor(rng.standard_normal((3, 4)))
        np.testing.assert_array_equal(model(x).numpy(), clone(x).numpy())

    def test_roundtrip_full_st_wa(self, tmp_path, rng):
        model = make_st_wa(5, model_dim=8, latent_dim=4, skip_dim=8, predictor_hidden=16, seed=1)
        path = save_checkpoint(model, tmp_path / "stwa.npz")
        clone = make_st_wa(5, model_dim=8, latent_dim=4, skip_dim=8, predictor_hidden=16, seed=2)
        load_checkpoint(clone, path)
        model.eval()
        clone.eval()
        x = Tensor(rng.standard_normal((1, 5, 12, 1)))
        with no_grad():
            np.testing.assert_array_equal(model(x).numpy(), clone(x).numpy())

    def test_default_metadata_empty(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        path = save_checkpoint(model, tmp_path / "lin.npz")
        assert load_checkpoint(model, path) == {}

    def test_creates_parent_directories(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        path = save_checkpoint(model, tmp_path / "deep" / "nested" / "lin.npz")
        assert path.exists()

    def test_mismatched_architecture_raises(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        path = save_checkpoint(model, tmp_path / "lin.npz")
        wrong = nn.Linear(3, 2, rng=rng)
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(wrong, path)
