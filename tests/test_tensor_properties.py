"""Property-based tests (hypothesis) on core tensor-algebra invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensor import Tensor, functional as F, ops, unbroadcast

finite_floats = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)


def small_arrays(max_side=4, max_dims=3):
    shapes = st.lists(st.integers(1, max_side), min_size=1, max_size=max_dims).map(tuple)
    return shapes.flatmap(lambda s: arrays(np.float64, s, elements=finite_floats))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_softmax_is_a_distribution(data):
    out = ops.softmax(Tensor(data), axis=-1).numpy()
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(out.shape[:-1]), atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_gradient_is_all_ones(data):
    a = Tensor(data, requires_grad=True)
    a.sum().backward()
    np.testing.assert_allclose(a.grad, np.ones_like(data))


@settings(max_examples=40, deadline=None)
@given(small_arrays(), st.floats(min_value=-3, max_value=3, allow_nan=False))
def test_scalar_multiply_scales_gradient(data, scalar):
    a = Tensor(data, requires_grad=True)
    (a * scalar).sum().backward()
    np.testing.assert_allclose(a.grad, np.full_like(data, scalar), atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_add_commutes(data):
    a, b = Tensor(data), Tensor(data[::-1].copy() if data.ndim == 1 else data.T.copy().reshape(data.shape))
    np.testing.assert_allclose((a + b).numpy(), (b + a).numpy())


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_reshape_roundtrip(data):
    a = Tensor(data)
    flat = ops.reshape(a, (data.size,))
    back = ops.reshape(flat, data.shape)
    np.testing.assert_array_equal(back.numpy(), data)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_exp_log_inverse_on_positive(data):
    positive = np.abs(data) + 0.1
    out = ops.log(ops.exp(Tensor(positive) * 0.1)).numpy()
    np.testing.assert_allclose(out, positive * 0.1, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_huber_bounded_by_mse_and_nonnegative(data):
    pred, target = Tensor(data), Tensor(np.zeros_like(data))
    huber = F.huber_loss(pred, target, delta=1.0).item()
    mse_half = 0.5 * F.mse_loss(pred, target).item()
    assert huber >= 0.0
    assert huber <= mse_half + 1e-9


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_tanh_bounded(data):
    out = ops.tanh(Tensor(data)).numpy()
    assert np.all(np.abs(out) <= 1.0)


@settings(max_examples=40, deadline=None)
@given(arrays(np.float64, (3, 4), elements=finite_floats), arrays(np.float64, (4,), elements=finite_floats))
def test_broadcast_backward_matches_manual_sum(matrix, vector):
    a = Tensor(matrix, requires_grad=True)
    b = Tensor(vector, requires_grad=True)
    (a * b).sum().backward()
    np.testing.assert_allclose(b.grad, matrix.sum(axis=0), atol=1e-9)
    np.testing.assert_allclose(a.grad, np.broadcast_to(vector, matrix.shape), atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
def test_unbroadcast_preserves_total_mass(rows, cols, extra):
    grad = np.ones((extra, rows, cols))
    out = unbroadcast(grad, (rows, cols))
    np.testing.assert_allclose(out.sum(), grad.sum())


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (4, 4), elements=finite_floats))
def test_matmul_identity(data):
    eye = Tensor(np.eye(4))
    np.testing.assert_allclose(ops.matmul(Tensor(data), eye).numpy(), data, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (3, 5), elements=st.floats(min_value=-5, max_value=5, allow_nan=False)))
def test_gaussian_kl_nonnegative(mu):
    log_var = np.zeros_like(mu)
    assert F.gaussian_kl(Tensor(mu), Tensor(log_var)).item() >= -1e-12
