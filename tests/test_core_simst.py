"""SimST graph-free forecaster: shapes, proximity encoding, shard contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BuildSpec, build_from_spec
from repro.core import SimSTForecaster, make_simst, topk_neighbors
from repro.tensor import Tensor

HISTORY, HORIZON = 6, 4


def tiny_model(num_sensors=5, seed=0, **overrides):
    rng = np.random.default_rng(seed)
    adjacency = rng.random((num_sensors, num_sensors))
    defaults = dict(
        history=HISTORY,
        horizon=HORIZON,
        hidden=8,
        embedding_dim=4,
        predictor_hidden=8,
        num_neighbors=2,
        seed=seed,
    )
    defaults.update(overrides)
    return SimSTForecaster(num_sensors, adjacency, **defaults)


class TestTopkNeighbors:
    def test_shapes_and_normalization(self):
        rng = np.random.default_rng(1)
        idx, wt = topk_neighbors(rng.random((7, 7)), k=3)
        assert idx.shape == wt.shape == (7, 3)
        assert idx.dtype == np.int64
        np.testing.assert_allclose(wt.sum(axis=1), 1.0)
        assert np.all(wt >= 0)

    def test_no_self_neighbors_and_symmetry(self):
        adjacency = np.array([[0.0, 9.0, 0.0], [0.0, 0.0, 0.0], [5.0, 0.0, 0.0]])
        idx, wt = topk_neighbors(adjacency, k=2)
        for sensor, row in enumerate(idx):
            used = row[wt[sensor] > 0]
            assert sensor not in used
        # direction folds away: 2->0 edge makes 2 a neighbor of 0
        assert 2 in idx[0][wt[0] > 0]

    def test_isolated_sensor_gets_zero_weights(self):
        adjacency = np.zeros((4, 4))
        adjacency[0, 1] = 1.0
        _, wt = topk_neighbors(adjacency, k=2)
        np.testing.assert_array_equal(wt[2], 0.0)
        np.testing.assert_array_equal(wt[3], 0.0)

    def test_k_clamped_to_network_size(self):
        idx, _ = topk_neighbors(np.ones((3, 3)), k=10)
        assert idx.shape == (3, 2)  # at most N-1 neighbors exist

    def test_non_square_raises(self):
        with pytest.raises(ValueError, match="square"):
            topk_neighbors(np.ones((3, 4)), k=2)

    def test_deterministic_under_ties(self):
        adjacency = np.ones((5, 5))
        first = topk_neighbors(adjacency, k=2)
        second = topk_neighbors(adjacency, k=2)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])


class TestForward:
    @pytest.mark.parametrize("encoder", ["mlp", "gru"])
    def test_output_shape(self, encoder):
        model = tiny_model(encoder=encoder)
        x = np.random.default_rng(2).standard_normal((3, 5, HISTORY, 1))
        out = model(Tensor(x))
        assert out.shape == (3, 5, HORIZON, 1)

    def test_pre_augmented_input_matches_raw(self):
        model = tiny_model()
        x = np.random.default_rng(3).standard_normal((2, 5, HISTORY, 1))
        raw = model(Tensor(x)).data
        augmented = model(Tensor(model.augment(x))).data
        np.testing.assert_array_equal(raw, augmented)

    def test_forecast_is_deterministic(self):
        model = tiny_model()
        x = np.random.default_rng(4).standard_normal((2, 5, HISTORY, 1))
        np.testing.assert_array_equal(model(Tensor(x)).data, model(Tensor(x)).data)

    def test_augment_shape_and_neighbor_channel(self):
        model = tiny_model()
        x = np.random.default_rng(5).standard_normal((2, 5, HISTORY, 1))
        augmented = model.augment(x)
        assert augmented.shape == (2, 5, HISTORY, 2)
        np.testing.assert_array_equal(augmented[..., :1], x)
        expected = np.einsum(
            "nk,bnkhf->bnhf", model._neighbor_wt, x[:, model._neighbor_idx]
        )
        np.testing.assert_array_equal(augmented[..., 1:], expected)

    def test_graph_free_aggregate_is_zero(self):
        model = SimSTForecaster(
            4, history=HISTORY, horizon=HORIZON, hidden=8, embedding_dim=4,
            predictor_hidden=8,
        )
        x = np.random.default_rng(6).standard_normal((2, 4, HISTORY, 1))
        np.testing.assert_array_equal(model.augment(x)[..., 1:], 0.0)

    def test_explicit_neighbors_bypass_adjacency(self):
        idx = np.array([[1], [0], [0]], dtype=np.int64)
        wt = np.ones((3, 1))
        model = SimSTForecaster(
            3, history=HISTORY, horizon=HORIZON, hidden=8, embedding_dim=4,
            predictor_hidden=8, neighbors=(idx, wt),
        )
        x = np.random.default_rng(7).standard_normal((1, 3, HISTORY, 1))
        np.testing.assert_array_equal(model.augment(x)[0, 0, :, 1], x[0, 1, :, 0])

    def test_input_validation(self):
        model = tiny_model()
        rng = np.random.default_rng(8)
        with pytest.raises(ValueError, match="expected \\(B, N, H, F\\)"):
            model(Tensor(rng.standard_normal((5, HISTORY, 1))))
        with pytest.raises(ValueError, match="history"):
            model(Tensor(rng.standard_normal((2, 5, HISTORY + 1, 1))))
        with pytest.raises(ValueError, match="full"):
            model(Tensor(rng.standard_normal((2, 4, HISTORY, 1))))
        with pytest.raises(ValueError, match="expected 5 sensors"):
            model(Tensor(rng.standard_normal((2, 4, HISTORY, 2))))
        with pytest.raises(ValueError, match="features"):
            model(Tensor(rng.standard_normal((2, 5, HISTORY, 3))))
        with pytest.raises(ValueError, match="full"):
            model.augment(rng.standard_normal((2, 4, HISTORY, 1)))

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="encoder"):
            tiny_model(encoder="transformer")
        with pytest.raises(ValueError, match="neighbors"):
            SimSTForecaster(3, neighbors=(np.zeros((2, 1), dtype=np.int64), np.zeros((2, 1))))
        with pytest.raises(ValueError, match="out of range"):
            SimSTForecaster(3, neighbors=(np.full((3, 1), 7, dtype=np.int64), np.ones((3, 1))))


class TestSensorShard:
    def test_shard_forward_equals_full_slice(self):
        model = tiny_model()
        x = np.random.default_rng(9).standard_normal((2, 5, HISTORY, 1))
        full = model(Tensor(x)).data
        augmented = model.augment(x)
        model.set_sensor_shard(1, 4)
        sliced = model(Tensor(augmented[:, 1:4])).data
        model.clear_sensor_shard()
        np.testing.assert_array_equal(sliced, full[:, 1:4])
        assert model.sensor_shard is None

    def test_shard_bounds_validated(self):
        model = tiny_model()
        for start, stop in [(-1, 2), (2, 2), (3, 1), (0, 6)]:
            with pytest.raises(ValueError, match="shard"):
                model.set_sensor_shard(start, stop)

    def test_sharded_model_rejects_raw_input(self):
        model = tiny_model()
        model.set_sensor_shard(0, 2)
        x = np.random.default_rng(10).standard_normal((2, 2, HISTORY, 1))
        with pytest.raises(ValueError, match="pre-augmented"):
            model(Tensor(x))
        model.clear_sensor_shard()

    def test_shard_sensor_count_validated(self):
        model = tiny_model()
        augmented = model.augment(
            np.random.default_rng(11).standard_normal((1, 5, HISTORY, 1))
        )
        model.set_sensor_shard(0, 2)
        with pytest.raises(ValueError, match="expects 2 sensors"):
            model(Tensor(augmented))  # all 5 sensors, shard wants 2
        model.clear_sensor_shard()

    def test_shardable_contract_flag(self):
        assert SimSTForecaster.sensor_shardable is True


class TestRegistry:
    def test_build_from_spec(self, tiny_dataset):
        spec = BuildSpec(dataset=tiny_dataset, history=12, horizon=12, seed=1)
        model = build_from_spec("simst", spec)
        assert isinstance(model, SimSTForecaster)
        assert model.num_sensors == tiny_dataset.num_sensors
        x = np.random.default_rng(12).standard_normal(
            (2, tiny_dataset.num_sensors, 12, 1)
        )
        assert model(Tensor(x)).shape == (2, tiny_dataset.num_sensors, 12, 1)

    def test_family_is_per_sensor(self):
        from repro.baselines.registry import model_family

        assert model_family("simst") == "per_sensor"

    def test_make_simst_factory(self):
        model = make_simst(4, None, history=HISTORY, horizon=HORIZON, hidden=8,
                           embedding_dim=4, predictor_hidden=8, seed=2)
        assert isinstance(model, SimSTForecaster)
        assert model.history == HISTORY
