"""MAE / RMSE / MAPE and the horizon breakdown."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.training import evaluate_all, horizon_breakdown, mae, mape, rmse


class TestBasics:
    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mae(np.zeros(3), np.zeros(4))

    def test_perfect_prediction(self):
        data = np.arange(10.0)
        assert mae(data, data) == 0.0
        assert rmse(data, data) == 0.0
        assert mape(data + 0, data) == 0.0

    def test_known_values(self):
        prediction = np.array([2.0, 4.0])
        target = np.array([1.0, 2.0])
        assert mae(prediction, target) == 1.5
        np.testing.assert_allclose(rmse(prediction, target), np.sqrt(2.5))
        np.testing.assert_allclose(mape(prediction, target), 100.0)

    def test_mape_masks_near_zero_targets(self):
        prediction = np.array([1.0, 100.0])
        target = np.array([0.0, 100.0])  # first entry masked
        assert mape(prediction, target, threshold=1.0) == 0.0

    def test_mape_all_masked_returns_nan(self):
        assert np.isnan(mape(np.ones(3), np.zeros(3)))

    def test_evaluate_all_keys(self, rng):
        out = evaluate_all(rng.standard_normal(10), rng.standard_normal(10))
        assert set(out) == {"mae", "rmse", "mape"}


class TestDegradedTargets:
    """Non-finite ground truth (dead sensors) is masked out of every metric."""

    def test_empty_arrays_return_nan(self):
        empty = np.zeros(0)
        assert np.isnan(mae(empty, empty))
        assert np.isnan(rmse(empty, empty))
        assert np.isnan(mape(empty, empty))

    def test_all_masked_targets_return_nan(self):
        prediction = np.array([1.0, 2.0])
        target = np.full(2, np.nan)
        assert np.isnan(mae(prediction, target))
        assert np.isnan(rmse(prediction, target))
        assert np.isnan(mape(prediction, target))

    def test_partial_nan_targets_are_ignored(self):
        prediction = np.array([2.0, 99.0, 4.0])
        target = np.array([1.0, np.nan, 2.0])
        assert mae(prediction, target) == 1.5
        np.testing.assert_allclose(rmse(prediction, target), np.sqrt(2.5))
        np.testing.assert_allclose(mape(prediction, target), 100.0)

    def test_inf_targets_are_masked_too(self):
        prediction = np.array([1.0, 5.0])
        target = np.array([1.0, np.inf])
        assert mae(prediction, target) == 0.0

    def test_evaluate_all_with_degraded_targets(self, rng):
        prediction = rng.standard_normal(20) + 100.0
        target = prediction.copy()
        target[::3] = np.nan
        out = evaluate_all(prediction, target)
        assert out["mae"] == 0.0
        assert out["rmse"] == 0.0
        assert out["mape"] == 0.0

    def test_horizon_breakdown_with_nan_step(self, rng):
        prediction = rng.standard_normal((2, 3, 4, 1))
        target = prediction.copy()
        target[:, :, 1] = np.nan  # one fully-dead horizon step
        out = horizon_breakdown(prediction, target)
        assert np.isnan(out[2]["mae"])
        assert out[1]["mae"] == 0.0


class TestHorizonBreakdown:
    def test_per_step_keys(self, rng):
        prediction = rng.standard_normal((4, 3, 6, 1))
        target = rng.standard_normal((4, 3, 6, 1))
        out = horizon_breakdown(prediction, target)
        assert sorted(out) == [1, 2, 3, 4, 5, 6]

    def test_average_consistency(self, rng):
        """Mean of per-step MAEs equals overall MAE (equal step sizes)."""
        prediction = rng.standard_normal((4, 3, 6, 1))
        target = rng.standard_normal((4, 3, 6, 1))
        per_step = horizon_breakdown(prediction, target)
        step_mean = np.mean([v["mae"] for v in per_step.values()])
        np.testing.assert_allclose(step_mean, mae(prediction, target))


finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (20,), elements=finite), arrays(np.float64, (20,), elements=finite))
def test_rmse_at_least_mae(prediction, target):
    """RMSE >= MAE always (Cauchy-Schwarz)."""
    assert rmse(prediction, target) >= mae(prediction, target) - 1e-9


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (20,), elements=finite))
def test_metrics_nonnegative(values):
    target = np.zeros(20)
    assert mae(values, target) >= 0
    assert rmse(values, target) >= 0


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (20,), elements=finite), st.floats(min_value=0.1, max_value=10))
def test_mae_scales_linearly(values, scale):
    target = np.zeros(20)
    np.testing.assert_allclose(mae(values * scale, target), scale * mae(values, target), rtol=1e-9)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (20,), elements=finite))
def test_mae_symmetric(values):
    other = values[::-1].copy()
    np.testing.assert_allclose(mae(values, other), mae(other, values))
