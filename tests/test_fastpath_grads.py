"""Optimized backward fast paths: fused linear, gather, getitem, concat.

These are the hot-path kernels — they carry in-place accumulation, basic- vs
advanced-index scatter dispatch, and grad-adoption (``own=True``) semantics,
so they get targeted coverage on top of the generic op gradchecks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, ops, set_grad_alloc_hook
from repro.tensor.gradcheck import check_fastpath_suite, check_gradients


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def t(rng, shape):
    return Tensor(rng.standard_normal(shape), requires_grad=True)


class TestFusedLinear:
    def test_matches_matmul_add(self, rng):
        x, w, b = t(rng, (5, 3, 4)), t(rng, (4, 6)), t(rng, (6,))
        fused = ops.linear(x, w, b)
        composite = ops.matmul(
            Tensor(x.data, requires_grad=True), Tensor(w.data, requires_grad=True)
        ) + Tensor(b.data, requires_grad=True)
        np.testing.assert_allclose(fused.data, composite.data)

    def test_gradients_batched(self, rng):
        check_gradients(ops.linear, [t(rng, (2, 3, 4)), t(rng, (4, 5)), t(rng, (5,))])

    def test_gradients_no_bias(self, rng):
        check_gradients(ops.linear, [t(rng, (3, 4)), t(rng, (4, 5))])

    def test_rejects_non_2d_weight(self, rng):
        with pytest.raises(ValueError):
            ops.linear(t(rng, (3, 4)), t(rng, (2, 4, 5)))

    def test_shared_weight_grad_sums_over_batch(self, rng):
        # dW must reduce over ALL batch dims, matching the per-sample sum.
        x, w = t(rng, (3, 2, 4)), t(rng, (4, 5))
        ops.linear(x, w).sum().backward()
        expected = sum(
            x.data[i, j][:, None] * np.ones(5)[None, :]
            for i in range(3)
            for j in range(2)
        )
        np.testing.assert_allclose(w.grad, expected)


class TestGather:
    def test_forward_matches_take_along_axis(self, rng):
        x = t(rng, (4, 6))
        idx = np.array([[0, 5, 2], [1, 1, 3], [2, 0, 0], [5, 4, 4]])
        out = ops.gather(x, 1, idx)
        np.testing.assert_allclose(out.data, np.take_along_axis(x.data, idx, axis=1))

    def test_gradients_unique_and_duplicate_lanes(self, rng):
        check_gradients(lambda x: ops.gather(x, 1, np.array([[0], [2], [1]])), [t(rng, (3, 4))])
        check_gradients(
            lambda x: ops.gather(x, 1, np.array([[0, 0, 3], [2, 2, 2], [1, 0, 1]])),
            [t(rng, (3, 4))],
        )

    def test_duplicate_lane_grads_accumulate(self, rng):
        x = t(rng, (2, 3))
        idx = np.array([[1, 1, 1], [0, 0, 2]])
        ops.gather(x, 1, idx).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 3.0, 0.0], [2.0, 0.0, 1.0]])

    def test_rejects_float_index(self, rng):
        with pytest.raises((TypeError, ValueError)):
            ops.gather(t(rng, (3, 4)), 1, np.zeros((3, 2)))

    def test_rejects_rank_mismatch(self, rng):
        with pytest.raises(ValueError):
            ops.gather(t(rng, (3, 4)), 1, np.zeros(3, dtype=np.int64))


class TestGetitemFastPaths:
    @pytest.mark.parametrize(
        "index",
        [
            1,
            slice(0, 2),
            slice(None, None, -2),
            (Ellipsis, slice(1, 3)),
            (slice(None), 1, slice(None, None, -1)),
            (None, slice(None)),
        ],
        ids=["int", "slice", "neg-step", "ellipsis", "mixed-tuple", "newaxis"],
    )
    def test_basic_index_gradients(self, rng, index):
        check_gradients(lambda x: x[index], [t(rng, (4, 3, 4))])

    def test_duplicate_fancy_index_accumulates(self, rng):
        x = t(rng, (4, 3))
        x[np.array([0, 2, 2, 0])].sum().backward()
        np.testing.assert_allclose(x.grad, [[2.0] * 3, [0.0] * 3, [2.0] * 3, [0.0] * 3])

    def test_identity_index_passes_grad_through(self, rng):
        x = t(rng, (3, 4))
        x[:].sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_zero_upstream_grad_short_circuits_to_zeros(self, rng):
        x = t(rng, (3, 4))
        (x[np.array([0, 0, 1])] * 0.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.zeros((3, 4)))

    def test_overlapping_slices_accumulate_in_one_buffer(self, rng):
        x = t(rng, (6, 2))
        (x[0:4].sum() + x[2:6].sum()).backward()
        np.testing.assert_allclose(x.grad, [[1, 1], [1, 1], [2, 2], [2, 2], [1, 1], [1, 1]])


class TestConcatBackward:
    def test_non_zero_axis_routes_slices(self, rng):
        a, b, c = t(rng, (2, 2, 3)), t(rng, (2, 3, 3)), t(rng, (2, 1, 3))
        out = ops.concat([a, b, c], axis=1)
        (out * Tensor(np.arange(out.data.size).reshape(out.data.shape))).sum().backward()
        weights = np.arange(out.data.size).reshape(out.data.shape)
        np.testing.assert_allclose(a.grad, weights[:, 0:2])
        np.testing.assert_allclose(b.grad, weights[:, 2:5])
        np.testing.assert_allclose(c.grad, weights[:, 5:6])

    def test_negative_axis_gradients(self, rng):
        check_gradients(lambda x, y: ops.concat([x, y], axis=-1), [t(rng, (2, 3)), t(rng, (2, 2))])


class TestInPlaceAccumulation:
    def test_grad_buffer_is_reused_across_accumulations(self, rng):
        x = t(rng, (3, 4))
        (x * 2.0).sum().backward()
        first = x.grad
        (x * 3.0).sum().backward()
        assert x.grad is first  # accumulated in place, not reallocated
        np.testing.assert_allclose(first, np.full((3, 4), 5.0))

    def test_alloc_hook_counts_buffers(self, rng):
        events = []
        restore = set_grad_alloc_hook(lambda nbytes: events.append(nbytes))
        try:
            x = t(rng, (8, 8))
            (x[0:4].sum() + ops.tanh(x).sum()).backward()
        finally:
            set_grad_alloc_hook(restore)
        assert events, "engine-side grad allocations should fire the hook"
        assert all(n > 0 for n in events)

    def test_hook_restore_returns_previous(self):
        sentinel = lambda n: None  # noqa: E731
        assert set_grad_alloc_hook(sentinel) is None
        assert set_grad_alloc_hook(None) is sentinel


class TestFastpathSuite:
    def test_suite_runs_all_cases(self):
        assert check_fastpath_suite() == 13
