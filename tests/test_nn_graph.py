"""Graph convolutions and adjacency utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.graph import normalized_adjacency, random_walk_matrix, scaled_laplacian
from repro.tensor import Tensor
from repro.tensor.gradcheck import check_gradients


@pytest.fixture
def adj(rng):
    a = (rng.random((6, 6)) < 0.4).astype(float)
    a = np.maximum(a, a.T)
    np.fill_diagonal(a, 0)
    a[0, 1] = a[1, 0] = 1.0  # guarantee at least one edge
    return a


class TestAdjacencyUtilities:
    def test_normalized_adjacency_symmetric(self, adj):
        out = normalized_adjacency(adj)
        np.testing.assert_allclose(out, out.T, atol=1e-12)

    def test_normalized_adjacency_spectrum_bounded(self, adj):
        eig = np.linalg.eigvalsh(normalized_adjacency(adj))
        assert eig.max() <= 1.0 + 1e-9

    def test_isolated_node_handled(self):
        adj = np.zeros((3, 3))
        adj[0, 1] = adj[1, 0] = 1.0
        out = normalized_adjacency(adj, add_self_loops=False)
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[2], 0.0)

    def test_random_walk_rows_sum_to_one(self, adj):
        walk = random_walk_matrix(adj)
        row_sums = walk.sum(axis=1)
        connected = adj.sum(axis=1) > 0
        np.testing.assert_allclose(row_sums[connected], 1.0)

    def test_scaled_laplacian_spectrum_in_unit_ball(self, adj):
        eig = np.linalg.eigvalsh(scaled_laplacian(adj))
        assert eig.min() >= -1.0 - 1e-9 and eig.max() <= 1.0 + 1e-9


class TestGraphConvLayers:
    def test_graphconv_shape_and_grad(self, adj, rng):
        layer = nn.GraphConv(3, 5, adj, rng=rng)
        x = Tensor(rng.standard_normal((2, 6, 3)), requires_grad=True)
        assert layer(x).shape == (2, 6, 5)
        check_gradients(lambda x_: layer(x_), [x])

    def test_graphconv_mixes_neighbours(self, rng):
        adj = np.zeros((3, 3))
        adj[0, 1] = adj[1, 0] = 1.0
        layer = nn.GraphConv(1, 1, adj, rng=rng)
        x = np.zeros((1, 3, 1))
        x[0, 1, 0] = 1.0
        out = layer(Tensor(x)).numpy() - layer.bias.numpy()
        assert abs(out[0, 0, 0]) > 1e-9  # neighbour influenced
        assert abs(out[0, 2, 0]) < 1e-12  # isolated node untouched

    def test_cheb_order_validation(self, adj, rng):
        with pytest.raises(ValueError):
            nn.ChebGraphConv(3, 5, adj, order=0, rng=rng)

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_cheb_shapes_and_grad(self, order, adj, rng):
        layer = nn.ChebGraphConv(3, 4, adj, order=order, rng=rng)
        x = Tensor(rng.standard_normal((2, 6, 3)), requires_grad=True)
        assert layer(x).shape == (2, 6, 4)
        check_gradients(lambda x_: layer(x_), [x])

    def test_diffusion_steps_validation(self, adj, rng):
        with pytest.raises(ValueError):
            nn.DiffusionGraphConv(3, 5, adj, steps=0, rng=rng)

    def test_diffusion_shape_grad_and_weight_count(self, adj, rng):
        layer = nn.DiffusionGraphConv(3, 4, adj, steps=2, rng=rng)
        assert len(layer.weights) == 5  # identity + 2 directions * 2 steps
        x = Tensor(rng.standard_normal((2, 6, 3)), requires_grad=True)
        assert layer(x).shape == (2, 6, 4)
        check_gradients(lambda x_: layer(x_), [x])

    def test_adaptive_adjacency_is_row_stochastic(self, rng):
        layer = nn.AdaptiveAdjacency(7, embed_dim=4, rng=rng)
        adj = layer().numpy()
        assert adj.shape == (7, 7)
        np.testing.assert_allclose(adj.sum(axis=1), 1.0)

    def test_node_adaptive_per_node_weights_differ(self, rng):
        """The AGCRN mechanism: two nodes with identical inputs produce
        different outputs because their generated weights differ."""
        layer = nn.NodeAdaptiveGraphConv(2, 3, num_nodes=4, embed_dim=3, rng=rng)
        x = np.zeros((1, 4, 2))
        x[:, :, :] = 1.0  # identical features on every node
        out = layer(Tensor(x)).numpy()[0]
        assert not np.allclose(out[0], out[1])

    def test_node_adaptive_gradients(self, rng):
        layer = nn.NodeAdaptiveGraphConv(2, 3, num_nodes=4, embed_dim=3, rng=rng)
        x = Tensor(rng.standard_normal((1, 4, 2)), requires_grad=True)
        check_gradients(lambda x_: layer(x_), [x])
        check_gradients(lambda e: layer(x.detach()), [layer.node_embed])
