"""t-SNE, k-means, purity, and text plotting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    TSNEConfig,
    ascii_line,
    ascii_scatter,
    cluster_purity,
    export_series_csv,
    kl_divergence_of_embedding,
    kmeans,
    tsne,
)


def blobs(rng, k=3, per=12, dims=8, spread=6.0):
    centers = rng.standard_normal((k, dims)) * spread
    points = np.vstack([c + rng.standard_normal((per, dims)) * 0.5 for c in centers])
    labels = np.repeat(np.arange(k), per)
    return points, labels


class TestTSNE:
    def test_input_validation(self, rng):
        with pytest.raises(ValueError):
            tsne(rng.standard_normal(10))
        with pytest.raises(ValueError):
            tsne(rng.standard_normal((2, 3)))

    def test_output_shape(self, rng):
        points, _ = blobs(rng)
        out = tsne(points, TSNEConfig(iterations=60))
        assert out.shape == (36, 2)
        assert np.all(np.isfinite(out))

    def test_separates_well_separated_blobs(self, rng):
        points, labels = blobs(rng)
        embedding = tsne(points, TSNEConfig(iterations=300, seed=1))
        predicted, _, _ = kmeans(embedding, 3, seed=1)
        assert cluster_purity(predicted, labels) > 0.9

    def test_deterministic_given_seed(self, rng):
        points, _ = blobs(rng, k=2, per=8)
        a = tsne(points, TSNEConfig(iterations=50, seed=3))
        b = tsne(points, TSNEConfig(iterations=50, seed=3))
        np.testing.assert_array_equal(a, b)

    def test_kl_objective_improves_over_random(self, rng):
        points, _ = blobs(rng)
        embedding = tsne(points, TSNEConfig(iterations=250, seed=0))
        random_embedding = rng.standard_normal(embedding.shape)
        assert kl_divergence_of_embedding(points, embedding) < kl_divergence_of_embedding(
            points, random_embedding
        )

    def test_centered_output(self, rng):
        points, _ = blobs(rng)
        embedding = tsne(points, TSNEConfig(iterations=50))
        np.testing.assert_allclose(embedding.mean(axis=0), 0.0, atol=1e-9)


class TestKMeans:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            kmeans(rng.standard_normal(5), 2)
        with pytest.raises(ValueError):
            kmeans(rng.standard_normal((5, 2)), 6)

    def test_recovers_blobs(self, rng):
        points, labels = blobs(rng, dims=2)
        predicted, centroids, inertia = kmeans(points, 3, seed=0)
        assert cluster_purity(predicted, labels) == 1.0
        assert centroids.shape == (3, 2)
        assert inertia >= 0

    def test_k_equals_n_gives_zero_inertia(self, rng):
        points = rng.standard_normal((5, 2))
        _, _, inertia = kmeans(points, 5, seed=0)
        np.testing.assert_allclose(inertia, 0.0, atol=1e-12)

    def test_single_cluster(self, rng):
        points = rng.standard_normal((10, 3))
        labels, centroids, _ = kmeans(points, 1, seed=0)
        assert set(labels) == {0}
        np.testing.assert_allclose(centroids[0], points.mean(axis=0))


class TestPurity:
    def test_perfect(self):
        assert cluster_purity(np.array([0, 0, 1, 1]), np.array([5, 5, 9, 9])) == 1.0

    def test_random_floor(self):
        labels = np.array([0, 0, 1, 1])
        truth = np.array([0, 1, 0, 1])
        assert cluster_purity(labels, truth) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cluster_purity(np.zeros(3), np.zeros(4))


class TestTextPlots:
    def test_scatter_renders(self, rng):
        out = ascii_scatter(rng.standard_normal(20), rng.standard_normal(20), width=30, height=10)
        lines = out.splitlines()
        assert len(lines) == 12  # borders + rows
        assert all(len(line) == 32 for line in lines)

    def test_scatter_label_glyphs(self):
        out = ascii_scatter(np.array([0.0, 1.0]), np.array([0.0, 1.0]), labels=np.array([0, 1]))
        assert "a" in out and "b" in out

    def test_scatter_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros(3), np.zeros(4))

    def test_line_renders_legend(self):
        out = ascii_line({"fast": [1, 2, 3], "slow": [3, 2, 1]})
        assert "fast" in out and "slow" in out

    def test_line_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_line({})

    def test_csv_export(self, tmp_path):
        path = export_series_csv(tmp_path / "series.csv", {"h": [12, 36], "mae": [1.0, 2.0]})
        content = path.read_text().strip().splitlines()
        assert content[0] == "h,mae"
        assert content[1] == "12,1.0"

    def test_csv_unequal_columns_raises(self, tmp_path):
        with pytest.raises(ValueError):
            export_series_csv(tmp_path / "bad.csv", {"a": [1], "b": [1, 2]})

    def test_csv_empty_raises(self, tmp_path):
        with pytest.raises(ValueError):
            export_series_csv(tmp_path / "bad.csv", {})
