"""Data-parallel training engine (repro.parallel).

The headline tier-1 gate lives in :class:`TestTrainerEquivalence`:
``Trainer(n_workers=2)`` must reproduce the serial loss trajectory within
1e-6 relative tolerance over several epochs on a deterministic model.  The
remaining classes unit-test the pieces that make that hold — contiguous
sharding, deterministic tree reduction, the weight codec, worker RNG
splitting, the shared-memory prefetcher, and worker failure translation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import make_deterministic_st_wa
from repro.core.loss import STWALoss
from repro.data import WindowSpec
from repro.data.windows import BatchIterator, SlidingWindowDataset
from repro.nn import Dropout
from repro.nn.module import Parameter
from repro.optim import all_reduce_gradients, tree_reduce
from repro.parallel import (
    ParallelConfig,
    PrefetchingBatchIterator,
    WorkerError,
    WorkerPool,
    default_start_method,
    shard_batch,
)
from repro.exec import ExecutorSpec
from repro.tensor import Tensor, reseed_module_generators, spawn_streams, worker_seed_sequence
from repro.training import Trainer, TrainerConfig, dumps_state_dict, loads_state_dict

SPEC = WindowSpec(12, 12)


def small_det_model(num_sensors: int = 8, seed: int = 0):
    """A tiny deterministic ST-WA: full architecture, exact parallel math."""
    return make_deterministic_st_wa(
        num_sensors, model_dim=8, skip_dim=8, predictor_hidden=16, seed=seed
    )


def parallel_trainer(tiny_dataset, n_workers: int = 0, **overrides):
    config = dict(
        epochs=3,
        batch_size=16,
        max_batches_per_epoch=4,
        eval_batches=2,
        lr=6e-3,
        seed=0,
        patience=10_000,
    )
    prefetch = overrides.pop("prefetch", True)
    start_method = overrides.pop("parallel_start_method", None)
    if n_workers >= 2:
        config["executor"] = ExecutorSpec.parallel(
            n_workers=n_workers, prefetch=prefetch, start_method=start_method
        )
    config.update(overrides)
    model = small_det_model(tiny_dataset.num_sensors)
    return Trainer(model, tiny_dataset, SPEC, TrainerConfig(**config))


# --------------------------------------------------------------------- #
# sharding
# --------------------------------------------------------------------- #
class TestShardBatch:
    def test_concat_reproduces_batch(self, rng):
        x = rng.normal(size=(10, 4, 3, 1))
        y = rng.normal(size=(10, 4, 2, 1))
        shards = shard_batch(x, y, 3)
        assert len(shards) == 3
        np.testing.assert_array_equal(np.concatenate([s[0] for s in shards]), x)
        np.testing.assert_array_equal(np.concatenate([s[1] for s in shards]), y)

    def test_small_batch_never_yields_empty_shards(self, rng):
        x = rng.normal(size=(2, 4, 3, 1))
        y = rng.normal(size=(2, 4, 2, 1))
        shards = shard_batch(x, y, 4)
        assert len(shards) == 2
        assert all(len(xs) >= 1 for xs, _ in shards)

    def test_batch_size_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="disagree"):
            shard_batch(rng.normal(size=(4, 2)), rng.normal(size=(3, 2)), 2)

    def test_empty_batch_raises(self):
        empty = np.empty((0, 4, 3, 1))
        with pytest.raises(ValueError, match="empty"):
            shard_batch(empty, empty, 2)


# --------------------------------------------------------------------- #
# reduction
# --------------------------------------------------------------------- #
class TestTreeReduce:
    def test_matches_sum(self, rng):
        values = [rng.normal(size=(3, 2)) for _ in range(7)]
        np.testing.assert_allclose(tree_reduce(values, np.add), np.sum(values, axis=0))

    def test_pairwise_order_is_deterministic(self):
        trace = tree_reduce(list("abcde"), lambda left, right: f"({left}+{right})")
        assert trace == "(((a+b)+(c+d))+e)"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            tree_reduce([], lambda a, b: a)


class TestAllReduceGradients:
    def test_weighted_mean_written_to_grad(self):
        parameter = Parameter(np.zeros(3))
        g0, g1 = np.array([1.0, 2.0, 3.0]), np.array([5.0, 6.0, 7.0])
        total = all_reduce_gradients([parameter], [[g0], [g1]], [3.0, 1.0])
        assert total == 4.0
        np.testing.assert_allclose(parameter.grad, 0.75 * g0 + 0.25 * g1)

    def test_replaces_rather_than_accumulates(self):
        parameter = Parameter(np.zeros(2))
        parameter.grad = np.array([100.0, 100.0])
        all_reduce_gradients([parameter], [[np.ones(2)], [np.ones(2)]], [1.0, 1.0])
        np.testing.assert_allclose(parameter.grad, np.ones(2))

    def test_missing_shard_grads_keep_total_weighting(self):
        # a parameter untouched on one shard contributes only its present
        # shards, still scaled by the *total* weight (the absent gradient is
        # exactly zero, not renormalized away)
        parameter = Parameter(np.zeros(2))
        g0 = np.array([4.0, 8.0])
        all_reduce_gradients([parameter], [[g0], [None]], [1.0, 3.0])
        np.testing.assert_allclose(parameter.grad, 0.25 * g0)

    def test_all_missing_gives_none(self):
        parameter = Parameter(np.zeros(2))
        parameter.grad = np.ones(2)
        all_reduce_gradients([parameter], [[None], [None]], [1.0, 1.0])
        assert parameter.grad is None

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="weights"):
            all_reduce_gradients([], [[], []], [1.0])

    def test_nonpositive_weights_raise(self):
        with pytest.raises(ValueError, match="positive"):
            all_reduce_gradients([], [[], []], [0.0, 0.0])


# --------------------------------------------------------------------- #
# RNG stream splitting
# --------------------------------------------------------------------- #
class TestRngStreams:
    def test_spawn_streams_reproducible(self):
        a = [g.normal(size=4) for g in spawn_streams(11, 3)]
        b = [g.normal(size=4) for g in spawn_streams(11, 3)]
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left, right)

    def test_spawn_streams_distinct(self):
        draws = [g.normal(size=8) for g in spawn_streams(11, 4)]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert not np.allclose(draws[i], draws[j])

    def test_stream_i_independent_of_n(self):
        two = spawn_streams(5, 2)[0].normal(size=6)
        four = spawn_streams(5, 4)[0].normal(size=6)
        np.testing.assert_array_equal(two, four)

    def test_worker_seed_sequences_distinct_by_worker_and_key(self):
        sequences = [
            worker_seed_sequence(0, 0, "a"),
            worker_seed_sequence(0, 1, "a"),
            worker_seed_sequence(0, 0, "b"),
            worker_seed_sequence(1, 0, "a"),
        ]
        states = [tuple(s.generate_state(4)) for s in sequences]
        assert len(set(states)) == len(states)

    def test_negative_worker_raises(self):
        with pytest.raises(ValueError):
            worker_seed_sequence(0, -1)

    def test_reseed_module_generators(self):
        module_a, module_b = Dropout(0.5), Dropout(0.5)
        named_a = reseed_module_generators(module_a, seed=3, worker_id=0)
        named_b = reseed_module_generators(module_b, seed=3, worker_id=1)
        assert set(named_a) == {"_rng"} and set(named_b) == {"_rng"}
        # workers draw different noise; the same worker id reproduces its own
        assert not np.allclose(module_a._rng.normal(size=8), module_b._rng.normal(size=8))
        module_c = Dropout(0.5)
        reseed_module_generators(module_c, seed=3, worker_id=1)
        module_d = Dropout(0.5)
        reseed_module_generators(module_d, seed=3, worker_id=1)
        np.testing.assert_array_equal(
            module_c._rng.normal(size=8), module_d._rng.normal(size=8)
        )


# --------------------------------------------------------------------- #
# weight wire codec
# --------------------------------------------------------------------- #
class TestWeightCodec:
    def test_round_trip_preserves_arrays(self):
        model = small_det_model()
        state = model.state_dict()
        restored = loads_state_dict(dumps_state_dict(state))
        assert set(restored) == set(state)
        for key, value in state.items():
            np.testing.assert_array_equal(restored[key], value)
            assert restored[key].dtype == np.asarray(value).dtype

    def test_corrupt_blob_raises(self):
        from repro.training.checkpoint import CheckpointError

        with pytest.raises(CheckpointError):
            loads_state_dict(b"not an npz archive")


# --------------------------------------------------------------------- #
# prefetcher
# --------------------------------------------------------------------- #
class TestPrefetchingBatchIterator:
    def make_windows(self, tiny_dataset):
        return SlidingWindowDataset(tiny_dataset.train, SPEC, raw=tiny_dataset.train_raw)

    def test_matches_serial_iterator_across_epochs(self, tiny_dataset):
        windows = self.make_windows(tiny_dataset)
        serial = BatchIterator(
            windows, batch_size=16, shuffle=True, rng=np.random.default_rng(0), max_batches=4
        )
        prefetched = PrefetchingBatchIterator(
            windows, batch_size=16, shuffle=True, rng=np.random.default_rng(0), max_batches=4
        )
        assert len(serial) == len(prefetched)
        for _ in range(2):  # second epoch reshuffles: RNG consumption must match
            batches_serial = list(serial)
            batches_prefetched = [(x.copy(), y.copy()) for x, y in prefetched]
            assert len(batches_serial) == len(batches_prefetched) == 4
            for (xs, ys), (xp, yp) in zip(batches_serial, batches_prefetched):
                np.testing.assert_array_equal(xs, xp)
                np.testing.assert_array_equal(ys, yp)

    def test_partial_final_batch(self, tiny_dataset):
        windows = self.make_windows(tiny_dataset)
        batch_size = len(windows) - 1  # forces a final batch of exactly 1
        sizes = [len(x) for x, _ in PrefetchingBatchIterator(windows, batch_size, shuffle=False)]
        assert sizes == [batch_size, 1]

    def test_invalid_config_raises(self, tiny_dataset):
        windows = self.make_windows(tiny_dataset)
        with pytest.raises(ValueError):
            PrefetchingBatchIterator(windows, batch_size=0)
        with pytest.raises(ValueError):
            PrefetchingBatchIterator(windows, batch_size=4, slots=1)


# --------------------------------------------------------------------- #
# worker pool
# --------------------------------------------------------------------- #
class TestWorkerPool:
    def make_batch(self, tiny_dataset, size: int = 8):
        windows = SlidingWindowDataset(tiny_dataset.train, SPEC)
        x, y = windows.sample(np.arange(size))
        return x, y  # y already scaled (data==raw here): fine for loss math

    def test_step_matches_serial_loss(self, tiny_dataset):
        model = small_det_model(tiny_dataset.num_sensors)
        x, y = self.make_batch(tiny_dataset)
        config = ParallelConfig(n_workers=2, seed=0)
        with WorkerPool(model, config, huber_delta=1.0, kl_weight=0.02) as pool:
            blob = dumps_state_dict(model.state_dict())
            results = pool.train_step(blob, shard_batch(x, y, 2))
        assert len(results) == 2
        assert all(np.isfinite(r.loss) for r in results)
        # shard weights are the finite target element counts
        assert sum(r.weight for r in results) == float(np.isfinite(y).sum())
        total = sum(r.weight for r in results)
        combined = sum(r.weight * r.loss for r in results) / total
        model.train()
        # deterministic model: weighted shard mean == full-batch loss
        loss = STWALoss(delta=1.0, kl_weight=0.02)(model(Tensor(x)), Tensor(y), model=None)
        np.testing.assert_allclose(combined, float(loss.item()), rtol=1e-12)
        # gradients align with the parameter list and carry data
        parameters = model.parameters()
        for result in results:
            assert len(result.grads) == len(parameters)
            assert any(g is not None and np.any(g != 0) for g in result.grads)

    def test_floating_point_error_translated(self, tiny_dataset):
        model = small_det_model(tiny_dataset.num_sensors)
        x, y = self.make_batch(tiny_dataset, size=4)
        x = x.copy()
        x[0] = np.nan  # anomaly screen trips inside the worker
        config = ParallelConfig(n_workers=2, seed=0, detect_anomaly=True)
        with WorkerPool(model, config, huber_delta=1.0, kl_weight=0.02) as pool:
            blob = dumps_state_dict(model.state_dict())
            with pytest.raises(FloatingPointError, match="worker"):
                pool.train_step(blob, shard_batch(x, y, 2))
            # pipes stayed in sync: the pool still serves clean steps (this
            # is what lets RecoveryPolicy roll back and retry)
            x_ok, y_ok = self.make_batch(tiny_dataset, size=4)
            results = pool.train_step(blob, shard_batch(x_ok, y_ok, 2))
            assert all(np.isfinite(r.loss) for r in results)

    def test_too_many_shards_raises(self, tiny_dataset):
        model = small_det_model(tiny_dataset.num_sensors)
        x, y = self.make_batch(tiny_dataset, size=6)
        with WorkerPool(model, ParallelConfig(n_workers=2), huber_delta=1.0, kl_weight=0.0) as pool:
            with pytest.raises(ValueError, match="exceed"):
                pool.train_step(None, shard_batch(x, y, 3) + [(x[:1], y[:1])])

    def test_closed_pool_raises(self, tiny_dataset):
        model = small_det_model(tiny_dataset.num_sensors)
        pool = WorkerPool(model, ParallelConfig(n_workers=2), huber_delta=1.0, kl_weight=0.0)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(WorkerError, match="closed"):
            pool.train_step(None, [(np.zeros((1, 2)), np.zeros((1, 2)))])

    def test_config_rejects_single_worker(self):
        with pytest.raises(ValueError, match="n_workers"):
            ParallelConfig(n_workers=1)

    def test_default_start_method_is_valid(self):
        import multiprocessing

        assert default_start_method() in multiprocessing.get_all_start_methods()


# --------------------------------------------------------------------- #
# Trainer integration: the headline equivalence gate
# --------------------------------------------------------------------- #
class TestTrainerEquivalence:
    def test_two_workers_match_serial_trajectory(self, tiny_dataset):
        """Tier-1 gate: n_workers=2 == serial within 1e-6 over 3 epochs."""
        serial = parallel_trainer(tiny_dataset, n_workers=0).fit()
        parallel = parallel_trainer(tiny_dataset, n_workers=2).fit()
        assert parallel.epochs_run == serial.epochs_run == 3
        np.testing.assert_allclose(parallel.train_loss, serial.train_loss, rtol=1e-6)
        np.testing.assert_allclose(parallel.val_mae, serial.val_mae, rtol=1e-6)

    def test_parallel_run_is_deterministic(self, tiny_dataset):
        a = parallel_trainer(tiny_dataset, n_workers=2).fit()
        b = parallel_trainer(tiny_dataset, n_workers=2).fit()
        np.testing.assert_array_equal(a.train_loss, b.train_loss)

    def test_pool_closed_after_fit(self, tiny_dataset):
        trainer = parallel_trainer(tiny_dataset, n_workers=2, epochs=1, max_batches_per_epoch=2)
        trainer.fit()
        assert not trainer.executor.is_open
        assert trainer.executor._pool is None

    def test_equivalence_without_prefetch(self, tiny_dataset):
        serial = parallel_trainer(tiny_dataset, n_workers=0, epochs=2).fit()
        parallel = parallel_trainer(tiny_dataset, n_workers=2, epochs=2, prefetch=False).fit()
        np.testing.assert_allclose(parallel.train_loss, serial.train_loss, rtol=1e-6)

    def test_checkpoint_resume_under_parallel(self, tiny_dataset, tmp_path):
        full = parallel_trainer(tiny_dataset, n_workers=2, epochs=3).fit()
        first = parallel_trainer(
            tiny_dataset, n_workers=2, epochs=2, checkpoint_dir=tmp_path
        )
        first.fit()
        from repro.training import latest_checkpoint

        resumed_trainer = parallel_trainer(
            tiny_dataset, n_workers=2, epochs=3, checkpoint_dir=tmp_path
        )
        resumed = resumed_trainer.fit(resume_from=latest_checkpoint(tmp_path))
        np.testing.assert_allclose(resumed.train_loss, full.train_loss, rtol=1e-6)

    def test_parallel_sections_reach_profiler(self, tiny_dataset):
        from repro.obs import profile

        with profile() as profiler:
            parallel_trainer(tiny_dataset, n_workers=2, epochs=1, max_batches_per_epoch=2).fit()
        names = set(profiler.parallel)
        assert {"serialize", "reduce", "worker0", "worker1"} <= names

    @pytest.mark.slow
    def test_spawn_start_method_smoke(self, tiny_dataset):
        trainer = parallel_trainer(
            tiny_dataset,
            n_workers=2,
            epochs=1,
            max_batches_per_epoch=2,
            parallel_start_method="spawn",
        )
        history = trainer.fit()
        assert np.isfinite(history.train_loss[0])
