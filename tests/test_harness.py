"""Experiment harness: settings, runner, reporting, and cheap table runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness import EXPERIMENTS, RunSettings, TableResult, fmt, get_dataset, train_and_score
from repro.harness.table6 import paper_scale_memory_gb


MICRO = RunSettings(epochs=1, max_batches=2, eval_batches=2, batch_size=8)


class TestRunSettings:
    def test_scopes(self):
        assert RunSettings.smoke().scope == "smoke"
        assert RunSettings.quick().epochs > RunSettings.smoke().epochs
        assert RunSettings.standard().epochs > RunSettings.quick().epochs

    def test_from_scope(self):
        assert RunSettings.from_scope("quick").scope == "quick"
        assert RunSettings.from_scope("SMOKE").scope == "smoke"
        with pytest.raises(KeyError):
            RunSettings.from_scope("galactic")

    def test_from_env_removed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCOPE", "quick")
        with pytest.raises(RuntimeError, match="from_scope"):
            RunSettings.from_env()

    def test_with_overrides(self):
        settings = RunSettings.smoke().with_overrides(epochs=9)
        assert settings.epochs == 9 and settings.scope == "smoke"


class TestRunner:
    def test_dataset_cache_returns_same_object(self):
        a = get_dataset("PEMS08", "fast")
        b = get_dataset("pems08", "fast")
        assert a is b

    def test_train_and_score_keys(self):
        dataset = get_dataset("PEMS08", "fast")
        result = train_and_score("gru", dataset, 12, 12, MICRO)
        expected = {
            "mae", "rmse", "mape", "seconds_per_epoch", "seconds_per_epoch_warm",
            "train_seconds", "parameters", "epochs_run",
        }
        assert expected <= set(result)
        assert result["epochs_run"] == 1

    def test_non_trained_models_skip_fitting(self):
        dataset = get_dataset("PEMS08", "fast")
        result = train_and_score("persistence", dataset, 12, 12, MICRO)
        assert result["epochs_run"] == 0
        assert result["mae"] > 0

    def test_settings_sink_threads_into_trainer(self):
        from repro.obs import ListSink

        sink = ListSink()
        dataset = get_dataset("PEMS08", "fast")
        train_and_score("gru", dataset, 12, 12, MICRO.with_overrides(sink=sink))
        kinds = {event["event"] for event in sink.events}
        assert {"train_begin", "epoch", "train_end"} <= kinds


class TestProfileHarness:
    def test_profile_run_writes_json(self, tmp_path):
        import json

        from repro.harness import profile

        result = profile.run("gru", settings=MICRO, dataset_name="PEMS08", out_dir=tmp_path)
        path = tmp_path / "profile_gru.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["ops"], "profile JSON must record ops"
        assert payload["model"] == "gru"
        assert any(row[0] == "module" for row in result.rows)

    def test_profile_non_trained_model(self, tmp_path):
        from repro.harness import profile

        result = profile.run("persistence", settings=MICRO, dataset_name="PEMS08", out_dir=tmp_path)
        assert result.extras["summary"]["ops"]  # forward-only ops still traced


class TestReporting:
    def test_table_result_text(self):
        result = TableResult("t", "demo", ["a", "b"], [["1", "2"]], notes=["n"])
        text = result.to_text()
        assert "demo" in text and "note: n" in text

    def test_table_result_markdown(self):
        result = TableResult("t", "demo", ["a"], [["1"]])
        md = result.to_markdown()
        assert md.startswith("### t: demo")
        assert "| a |" in md

    def test_save(self, tmp_path):
        result = TableResult("t", "demo", ["a"], [["1"]])
        path = result.save(tmp_path)
        assert path.read_text().startswith("== t: demo ==")

    def test_fmt(self):
        assert fmt(1.23456) == "1.23"
        assert fmt(1.23456, 1) == "1.2"
        assert fmt("OOM") == "OOM"


class TestExperimentRegistry:
    def test_every_paper_table_and_figure_present(self):
        expected = {f"table{i}" for i in range(4, 15)} | {"figure9", "figure10"}
        assert expected <= set(EXPERIMENTS)
        # companion analyses beyond the paper's numbered exhibits
        assert {"attention_scaling", "horizon_report"} <= set(EXPERIMENTS)


class TestCheapExperimentRuns:
    """Micro-scope runs: validate structure, not accuracy."""

    def test_table4_structure(self):
        result = EXPERIMENTS["table4"](settings=MICRO, datasets=("PEMS08",), models=("GRU", "ST-WA"))
        assert result.headers == ["Dataset", "Metric", "GRU", "ST-WA"]
        assert len(result.rows) == 3  # MAE/MAPE/RMSE for one dataset
        assert any("*" in cell for row in result.rows for cell in row)

    def test_table5_structure(self):
        result = EXPERIMENTS["table5"](settings=MICRO, models=("GRU", "ST-WA"), histories=(12, 24))
        assert len(result.rows) == 3
        assert len(result.headers) == 1 + 4

    def test_table6_marks_oom(self):
        result = EXPERIMENTS["table6"](settings=MICRO, datasets=("PEMS07",), models=("STFGNN", "ST-WA"))
        flat = [cell for row in result.rows for cell in row]
        assert "OOM" in flat

    def test_table6_memory_helper(self):
        assert paper_scale_memory_gb("STFGNN", "PEMS07", 72) > 16
        assert paper_scale_memory_gb("ST-WA", "PEMS07", 72) < 16

    def test_table7_structure(self):
        result = EXPERIMENTS["table7"](settings=MICRO, datasets=("PEMS08",), models=("GRU", "GRU+ST"))
        assert len(result.rows) == 3

    def test_table8_reports_costs(self):
        result = EXPERIMENTS["table8"](settings=MICRO, models=("WA-1", "ST-WA"))
        row_labels = [row[0] for row in result.rows]
        assert "Training (s/epoch)" in row_labels
        assert "# Para" in row_labels

    def test_table9_structure(self):
        result = EXPERIMENTS["table9"](settings=MICRO, configurations=((3, 2, 2), (12,)))
        assert len(result.headers) == 3

    def test_table12_structure(self):
        result = EXPERIMENTS["table12"](settings=MICRO, sizes=(4, 8))
        assert [row[0] for row in result.rows] == ["4", "8"]

    def test_attention_scaling_slopes(self):
        result = EXPERIMENTS["attention_scaling"](settings=MICRO, lengths=(16, 32, 64))
        canonical = result.extras["canonical_slope"]
        window = result.extras["window_slope"]
        assert canonical > window  # the efficiency claim, directionally


class TestBenchReports:
    """The speedup-gated benches must always stamp their hardware contract.

    ``speedup_gate_enforced`` / ``cores_detected`` are how CI distinguishes
    "the gate passed" from "the gate could not bite on this host" — both
    parallel-bench and shard-bench reports must carry them at top level.
    """

    def test_parallel_bench_report_carries_speedup_gate_flags(self, tmp_path, monkeypatch):
        import json

        from repro.harness import parallel_bench

        monkeypatch.setattr(parallel_bench, "EQUIVALENCE_EPOCHS", 1)
        _, report = parallel_bench.run(
            settings=MICRO,
            out_dir=tmp_path,
            fast=True,
            model_name="gru",
            worker_counts=(2,),
        )
        assert isinstance(report["speedup_gate_enforced"], bool)
        assert report["cores_detected"] >= 1
        assert report["speedup_gate_enforced"] == (report["cores_detected"] >= 2)
        saved = json.loads((tmp_path / "parallel_bench.json").read_text())
        assert saved["speedup_gate_enforced"] == report["speedup_gate_enforced"]
        assert "all_passed" in saved

    def test_shard_bench_report_carries_speedup_gate_flags(self, tmp_path, monkeypatch):
        import json

        from repro.harness import shard_bench

        monkeypatch.setattr(shard_bench, "EQUIVALENCE_MODELS", ("simst",))
        monkeypatch.setattr(shard_bench, "EQUIVALENCE_EPOCHS", 1)
        _, report = shard_bench.run(
            settings=MICRO,
            out_dir=tmp_path,
            fast=True,
            city_sensors=64,
            city_steps=1,
        )
        assert isinstance(report["speedup_gate_enforced"], bool)
        assert report["cores_detected"] >= 1
        assert report["speedup_gate_enforced"] == (report["cores_detected"] >= 2)
        assert report["speedup_gate"]["enforced"] == report["speedup_gate_enforced"]
        # the unconditional gates must have passed on any host
        assert all(check["passed"] for check in report["equivalence"])
        assert report["serve_identity"]["passed"]
        assert report["city_scale"]["passed"]
        assert report["city_scale"]["shard_axis"] == "sensor"
        saved = json.loads((tmp_path / "shard_bench.json").read_text())
        assert saved["speedup_gate_enforced"] == report["speedup_gate_enforced"]
        assert "all_passed" in saved

    def test_capacity_report_structure(self, tmp_path):
        import json

        from repro.harness import capacity

        result, report = capacity.run(settings=MICRO, out_dir=tmp_path)
        saved = json.loads((tmp_path / "capacity_report.json").read_text())
        assert saved["sensor_counts"] == report["sensor_counts"]
        simst = report["models"]["simst"]
        assert all(plan["sensor_shardable"] for plan in simst.values())
        # at least one graph-bound family must OOM unshardably at 50k
        verdicts = [
            per_count[str(50_000)]
            for per_count in report["models"].values()
        ]
        assert any(
            not plan["fits"] and not plan["sensor_shardable"] for plan in verdicts
        )
        assert result.experiment_id == "capacity"
        assert len(result.rows) == len(report["models"])
