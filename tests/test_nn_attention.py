"""Canonical multi-head attention and sliding-window attention."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.attention import merge_heads, split_heads
from repro.tensor import Tensor
from repro.tensor.gradcheck import check_gradients


class TestHeadSplitting:
    def test_roundtrip(self, rng):
        x = Tensor(rng.standard_normal((2, 5, 8)))
        back = merge_heads(split_heads(x, 4))
        np.testing.assert_array_equal(back.numpy(), x.numpy())

    def test_shapes(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 5, 8)))
        assert split_heads(x, 2).shape == (2, 3, 2, 5, 4)


class TestMultiHeadSelfAttention:
    def test_indivisible_heads_raises(self, rng):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(4, 10, num_heads=3, rng=rng)

    @pytest.mark.parametrize("heads", [1, 2, 4])
    def test_output_shape(self, heads, rng):
        layer = nn.MultiHeadSelfAttention(3, 8, num_heads=heads, rng=rng)
        assert layer(Tensor(rng.standard_normal((2, 6, 3)))).shape == (2, 6, 8)

    def test_extra_leading_dims(self, rng):
        layer = nn.MultiHeadSelfAttention(3, 8, num_heads=2, rng=rng)
        assert layer(Tensor(rng.standard_normal((2, 4, 6, 3)))).shape == (2, 4, 6, 8)

    def test_gradients(self, rng):
        layer = nn.MultiHeadSelfAttention(3, 4, num_heads=2, rng=rng)
        x = Tensor(rng.standard_normal((1, 5, 3)), requires_grad=True)
        check_gradients(lambda x_: layer(x_), [x])

    def test_permutation_equivariance(self, rng):
        """Self-attention without positions is permutation-equivariant."""
        layer = nn.MultiHeadSelfAttention(3, 8, num_heads=2, rng=rng)
        x = rng.standard_normal((1, 6, 3))
        perm = rng.permutation(6)
        out = layer(Tensor(x)).numpy()
        out_permuted = layer(Tensor(x[:, perm])).numpy()
        np.testing.assert_allclose(out[:, perm], out_permuted, atol=1e-10)

    def test_shared_parameters_are_spatio_temporal_agnostic(self, rng):
        """The same projections apply to every 'sensor' slice — the paper's
        motivating deficiency of canonical attention."""
        layer = nn.MultiHeadSelfAttention(3, 8, num_heads=2, rng=rng)
        x = rng.standard_normal((1, 6, 3))
        batch = np.stack([x[0], x[0]])  # two identical "sensors"
        out = layer(Tensor(batch)).numpy()
        np.testing.assert_allclose(out[0], out[1], atol=1e-12)


class TestSlidingWindowAttention:
    def test_invalid_window_raises(self, rng):
        with pytest.raises(ValueError):
            nn.SlidingWindowSelfAttention(3, 8, window=0, rng=rng)

    def test_output_shape(self, rng):
        layer = nn.SlidingWindowSelfAttention(3, 8, window=2, num_heads=2, rng=rng)
        assert layer(Tensor(rng.standard_normal((2, 9, 3)))).shape == (2, 9, 8)

    def test_locality_is_enforced(self, rng):
        """Perturbing a timestamp outside the window must not change the
        output at a distant position."""
        layer = nn.SlidingWindowSelfAttention(3, 8, window=1, num_heads=1, rng=rng)
        x = rng.standard_normal((1, 10, 3))
        base = layer(Tensor(x)).numpy()
        perturbed = x.copy()
        perturbed[0, 9] += 100.0
        out = layer(Tensor(perturbed)).numpy()
        np.testing.assert_allclose(out[0, :5], base[0, :5], atol=1e-8)
        assert not np.allclose(out[0, 9], base[0, 9])

    def test_full_window_matches_canonical(self, rng):
        """With window >= H the band mask is all-pass: results equal the
        canonical inner attention."""
        layer = nn.SlidingWindowSelfAttention(3, 8, window=20, num_heads=2, rng=rng)
        x = Tensor(rng.standard_normal((2, 6, 3)))
        np.testing.assert_allclose(layer(x).numpy(), layer.inner(x).numpy(), atol=1e-9)

    def test_gradients(self, rng):
        layer = nn.SlidingWindowSelfAttention(2, 4, window=1, num_heads=1, rng=rng)
        x = Tensor(rng.standard_normal((1, 5, 2)), requires_grad=True)
        check_gradients(lambda x_: layer(x_), [x])

    def test_mask_cache_reused(self, rng):
        layer = nn.SlidingWindowSelfAttention(3, 8, window=2, rng=rng)
        layer(Tensor(rng.standard_normal((1, 7, 3))))
        first = layer._mask_cache[7]
        layer(Tensor(rng.standard_normal((1, 7, 3))))
        assert layer._mask_cache[7] is first
