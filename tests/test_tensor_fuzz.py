"""Property-based autodiff fuzzer: random op programs vs numerical gradients.

Each case composes 5-8 randomly drawn ops from the traced registry
(:data:`repro.tensor.ops.TRACED_OPS`) into a small program over 2-D/3-D
tensors, then asserts the analytic gradients of every leaf input against
central finite differences (:func:`repro.tensor.check_gradients`).

The generator is fully deterministic (seeded per case) and *smoothness
aware*: ops with gradient kinks (``relu``, ``abs``, ``max`` ties, ``clip``
edges, ...) are only emitted when every element sits a safe margin away
from the kink, so a failure always means a broken backward rule, never
finite-difference noise.  A replayed program is a pure function of its
leaves, which is exactly what gradcheck's repeated perturbed evaluation
requires.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, ops
from repro.tensor.gradcheck import check_gradients

CASES = 200
MIN_OPS, MAX_OPS = 5, 8
MARGIN = 1e-3  # distance every element must keep from a gradient kink
MAX_MAGNITUDE = 15.0  # squash with tanh beyond this to keep exp/power sane


# --------------------------------------------------------------------- #
# program interpreter: each step is (op_name, spec) where spec carries the
# frozen parameters (constants, masks, leaf indices) drawn at generation
# --------------------------------------------------------------------- #
def _apply(step, value: Tensor, leaves) -> Tensor:
    name, spec = step
    if name in ("add", "sub", "mul", "div", "maximum", "minimum", "matmul"):
        other = leaves[spec["leaf"]] if "leaf" in spec else spec["const"]
        operands = (other, value) if spec.get("flip") else (value, other)
        return getattr(ops, name)(*operands)
    if name == "linear":
        return ops.linear(value, leaves[spec["weight"]], leaves[spec["bias"]])
    if name == "where":
        return ops.where(spec["condition"], value, leaves[spec["leaf"]])
    if name == "dropout_mask":
        return ops.dropout_mask(value, spec["mask"])
    if name == "power":
        return ops.power(value, spec["exponent"])
    if name == "leaky_relu":
        return ops.leaky_relu(value, spec["slope"])
    if name == "clip":
        return ops.clip(value, spec["low"], spec["high"])
    if name in ("concat", "stack"):
        return getattr(ops, name)([value, leaves[spec["leaf"]]], axis=spec["axis"])
    if name == "gather":
        return ops.gather(value, spec["axis"], spec["index"])
    if name == "getitem":
        return ops.getitem(value, spec["index"])
    if name == "reshape":
        return ops.reshape(value, spec["shape"])
    if name == "swapaxes":
        return ops.swapaxes(value, spec["axis1"], spec["axis2"])
    if name == "pad":
        return ops.pad(value, spec["pad_width"])
    if name in ("sum", "mean", "max"):
        return getattr(ops, name)(value, axis=spec["axis"], keepdims=True)
    if name in ("softmax", "log_softmax"):
        return getattr(ops, name)(value, axis=spec["axis"])
    # pure unary: neg, exp, log, sqrt, abs, tanh, sigmoid, relu, softplus,
    # transpose
    return getattr(ops, name)(value)


def _replay(steps, leaf_tensors) -> Tensor:
    value = leaf_tensors[0]
    for step in steps:
        value = _apply(step, value, leaf_tensors)
    return value


def _value_of(steps, leaves) -> np.ndarray:
    tensors = [Tensor(leaf, requires_grad=False) for leaf in leaves]
    return _replay(steps, tensors).data


# --------------------------------------------------------------------- #
# generation: draw the next step given the current value
# --------------------------------------------------------------------- #
def _kink_margin_ok(value: np.ndarray, at: float = 0.0) -> bool:
    return bool(np.all(np.abs(value - at) > MARGIN))


def _reduce_margin_ok(value: np.ndarray, axis: int) -> bool:
    """True when arg-extrema are unique by MARGIN along ``axis`` (no ties)."""
    if value.shape[axis] < 2:
        return False
    ordered = np.sort(value, axis=axis)
    top_gap = np.take(ordered, -1, axis=axis) - np.take(ordered, -2, axis=axis)
    return bool(np.all(top_gap > MARGIN))


def _next_step(rng: np.random.Generator, value: np.ndarray, leaves):
    """Draw one applicable step; may append fresh leaves. None = resample."""
    shape = value.shape

    def fresh(leaf_shape, low=-1.0, high=1.0) -> int:
        leaves.append(rng.uniform(low, high, size=leaf_shape))
        return len(leaves) - 1

    if np.max(np.abs(value)) > MAX_MAGNITUDE:
        return ("tanh", {})

    name = rng.choice(
        [
            "add", "sub", "mul", "div", "neg", "power", "exp", "log", "sqrt",
            "abs", "maximum", "minimum", "clip", "where", "tanh", "sigmoid",
            "relu", "leaky_relu", "softplus", "matmul", "linear", "transpose",
            "swapaxes", "reshape", "getitem", "gather", "concat", "stack",
            "pad", "sum", "mean", "max", "softmax", "log_softmax",
            "dropout_mask",
        ]
    )

    if name in ("add", "sub", "mul"):
        # broadcast half the time: exercise gradient reduction over axes
        leaf_shape = shape
        if len(shape) >= 2 and rng.random() < 0.5:
            axis = int(rng.integers(len(shape)))
            leaf_shape = tuple(1 if d == axis else s for d, s in enumerate(shape))
        return (name, {"leaf": fresh(leaf_shape), "flip": bool(rng.random() < 0.5)})
    if name == "div":
        # denominator bounded away from 0 so central differences stay clean
        if rng.random() < 0.5:
            return (name, {"leaf": fresh(shape, 0.7, 1.5)})
        return (name, {"leaf": fresh(shape, -1.5, -0.7)})
    if name in ("maximum", "minimum"):
        const = np.float64(rng.uniform(-1.0, 1.0))
        if not _kink_margin_ok(value, float(const)):
            return None
        return (name, {"const": const, "flip": bool(rng.random() < 0.5)})
    if name == "neg":
        return (name, {})
    if name == "power":
        return (name, {"exponent": int(rng.choice([2, 3]))})
    if name == "exp":
        return (name, {}) if np.max(value) < 2.5 else None
    if name in ("log", "sqrt"):
        return (name, {}) if np.min(value) > 0.1 else None
    if name in ("abs", "relu", "leaky_relu"):
        if not _kink_margin_ok(value):
            return None
        return (name, {"slope": float(rng.uniform(0.01, 0.3))} if name == "leaky_relu" else {})
    if name == "clip":
        low, high = np.quantile(value, [0.25, 0.75])
        if not (_kink_margin_ok(value, float(low)) and _kink_margin_ok(value, float(high))):
            return None
        return (name, {"low": float(low), "high": float(high)})
    if name == "where":
        return (
            name,
            {"condition": rng.random(size=shape) < 0.5, "leaf": fresh(shape)},
        )
    if name in ("tanh", "sigmoid", "softplus"):
        return (name, {})
    if name == "matmul":
        if len(shape) != 2:
            return None
        k = int(rng.integers(2, 4))
        return (name, {"leaf": fresh((shape[1], k))})
    if name == "linear":
        if len(shape) != 2:
            return None
        k = int(rng.integers(2, 4))
        return (name, {"weight": fresh((shape[1], k)), "bias": fresh((k,))})
    if name == "transpose":
        return (name, {})
    if name == "swapaxes":
        if len(shape) < 2:
            return None
        axes = rng.choice(len(shape), size=2, replace=False)
        return (name, {"axis1": int(axes[0]), "axis2": int(axes[1])})
    if name == "reshape":
        return (name, {"shape": (int(np.prod(shape)),)}) if len(shape) > 1 else None
    if name == "getitem":
        if shape[0] < 2:
            return None
        return (name, {"index": slice(0, int(rng.integers(1, shape[0])))})
    if name == "gather":
        # take_along_axis semantics: full-rank index, repeats allowed (they
        # exercise the duplicate-safe scatter path in backward)
        axis = int(rng.integers(len(shape)))
        index_shape = tuple(
            shape[axis] + 1 if d == axis else s for d, s in enumerate(shape)
        )
        index = rng.integers(0, shape[axis], size=index_shape)
        return (name, {"axis": axis, "index": index})
    if name in ("concat", "stack"):
        if len(shape) != 2:
            return None
        axis = int(rng.integers(2)) if name == "concat" else 0
        return (name, {"leaf": fresh(shape), "axis": axis})
    if name == "pad":
        width = [(int(rng.integers(2)), int(rng.integers(2))) for _ in shape]
        return (name, {"pad_width": width})
    if name in ("sum", "mean", "softmax", "log_softmax"):
        return (name, {"axis": int(rng.integers(len(shape)))})
    if name == "max":
        axis = int(rng.integers(len(shape)))
        return (name, {"axis": axis}) if _reduce_margin_ok(value, axis) else None
    if name == "dropout_mask":
        keep = 0.8
        mask = (rng.random(size=shape) < keep) / keep
        return (name, {"mask": mask})
    return None


def generate_program(seed: int):
    """A deterministic (steps, leaves) pair for one fuzz case."""
    rng = np.random.default_rng(seed)
    shape = (int(rng.integers(2, 4)), int(rng.integers(2, 4)))
    leaves = [rng.uniform(-1.0, 1.0, size=shape)]
    steps = []
    n_ops = int(rng.integers(MIN_OPS, MAX_OPS + 1))
    attempts = 0
    while len(steps) < n_ops and attempts < 200:
        attempts += 1
        value = _value_of(steps, leaves)
        before = len(leaves)
        step = _next_step(rng, value, leaves)
        if step is None:
            del leaves[before:]  # drop leaves a rejected candidate added
            continue
        steps.append(step)
    while len(steps) < MIN_OPS:  # tanh is always applicable
        steps.append(("tanh", {}))
    return steps, leaves


# --------------------------------------------------------------------- #
# the fuzz run
# --------------------------------------------------------------------- #
class TestAutodiffFuzz:
    @pytest.mark.parametrize("seed", range(CASES))
    def test_program_gradients_match_numerical(self, seed):
        steps, leaves = generate_program(seed)
        assert MIN_OPS <= len(steps) <= MAX_OPS
        tensors = [Tensor(leaf, requires_grad=True) for leaf in leaves]
        check_gradients(lambda *args: _replay(steps, args), tensors)

    def test_op_coverage_spans_registry(self):
        used = set()
        for seed in range(CASES):
            steps, _ = generate_program(seed)
            used.update(name for name, _ in steps)
        unknown = used - set(ops.TRACED_OPS)
        assert not unknown, f"fuzzer emitted unregistered ops: {sorted(unknown)}"
        assert len(used) >= 20, (
            f"fuzzer only exercised {len(used)} distinct ops: {sorted(used)}"
        )

    def test_generation_is_deterministic(self):
        a_steps, a_leaves = generate_program(42)
        b_steps, b_leaves = generate_program(42)
        assert repr(a_steps) == repr(b_steps)
        for left, right in zip(a_leaves, b_leaves):
            np.testing.assert_array_equal(left, right)
