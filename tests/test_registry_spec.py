"""BuildSpec construction API: keyword builders, overrides, legacy shim."""

from __future__ import annotations

import warnings

import pytest

from repro.baselines import (
    MODEL_BUILDERS,
    BuildSpec,
    adapt_legacy_builder,
    build_from_spec,
    build_model,
    register_model,
)
from repro.baselines.gru_seq2seq import GRUForecaster

HISTORY, HORIZON = 12, 12


def spec_for(dataset, **kwargs):
    return BuildSpec(dataset=dataset, history=HISTORY, horizon=HORIZON, **kwargs)


class TestBuildSpec:
    def test_build_from_spec(self, tiny_dataset):
        model = build_from_spec("st-wa", spec_for(tiny_dataset, seed=3))
        assert model.num_parameters() > 0

    def test_case_insensitive(self, tiny_dataset):
        assert build_from_spec("St-Wa", spec_for(tiny_dataset)) is not None

    def test_unknown_model_raises(self, tiny_dataset):
        with pytest.raises(KeyError):
            build_from_spec("nope", spec_for(tiny_dataset))

    def test_overrides_reach_constructor(self, tiny_dataset):
        small = build_from_spec("gru", spec_for(tiny_dataset, overrides={"hidden_size": 4}))
        large = build_from_spec("gru", spec_for(tiny_dataset, overrides={"hidden_size": 32}))
        assert small.num_parameters() < large.num_parameters()

    def test_unknown_override_raises(self, tiny_dataset):
        with pytest.raises(TypeError):
            build_from_spec("gru", spec_for(tiny_dataset, overrides={"wingspan": 3}))

    def test_replace(self, tiny_dataset):
        spec = spec_for(tiny_dataset, seed=0)
        other = spec.replace(seed=5, horizon=24)
        assert other.seed == 5 and other.horizon == 24
        assert other.dataset is spec.dataset and spec.seed == 0

    def test_positional_build_model_still_works(self, tiny_dataset):
        model = build_model("gru", tiny_dataset, HISTORY, HORIZON, seed=0)
        assert model.num_parameters() > 0

    def test_build_model_forwards_overrides(self, tiny_dataset):
        model = build_model("gru", tiny_dataset, HISTORY, HORIZON, overrides={"hidden_size": 4})
        baseline = build_model("gru", tiny_dataset, HISTORY, HORIZON)
        assert model.num_parameters() < baseline.num_parameters()


class TestLegacyShim:
    def legacy_builder(self, ds, history, horizon, seed):
        return GRUForecaster(history, horizon, hidden_size=4, predictor_hidden=8, seed=seed)

    def test_register_model_adapts_and_warns_once(self, tiny_dataset):
        register_model("legacy-test", self.legacy_builder, family="rnn")
        try:
            with pytest.warns(DeprecationWarning):
                first = build_from_spec("legacy-test", spec_for(tiny_dataset))
            assert first.num_parameters() > 0
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # a second warning would raise
                second = build_from_spec("legacy-test", spec_for(tiny_dataset))
            assert second.num_parameters() == first.num_parameters()
        finally:
            MODEL_BUILDERS.pop("legacy-test", None)

    def test_direct_dict_assignment_also_shimmed(self, tiny_dataset):
        MODEL_BUILDERS["legacy-direct"] = self.legacy_builder
        try:
            with pytest.warns(DeprecationWarning):
                model = build_from_spec("legacy-direct", spec_for(tiny_dataset))
            assert model.num_parameters() > 0
        finally:
            MODEL_BUILDERS.pop("legacy-direct", None)

    def test_adapter_passes_spec_fields_positionally(self, tiny_dataset):
        seen = {}

        def builder(ds, history, horizon, seed):
            seen.update(ds=ds, history=history, horizon=horizon, seed=seed)
            return GRUForecaster(history, horizon, hidden_size=4, predictor_hidden=8, seed=seed)

        adapted = adapt_legacy_builder(builder)
        with pytest.warns(DeprecationWarning):
            adapted(spec_for(tiny_dataset, seed=9))
        assert seen["ds"] is tiny_dataset
        assert (seen["history"], seen["horizon"], seen["seed"]) == (HISTORY, HORIZON, 9)

    def test_new_style_builder_not_wrapped(self, tiny_dataset):
        def builder(spec):
            return GRUForecaster(spec.history, spec.horizon, hidden_size=4, predictor_hidden=8, seed=spec.seed)

        register_model("new-style-test", builder)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                model = build_from_spec("new-style-test", spec_for(tiny_dataset))
            assert model.num_parameters() > 0
        finally:
            MODEL_BUILDERS.pop("new-style-test", None)
