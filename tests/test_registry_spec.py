"""BuildSpec construction API: keyword builders, overrides, legacy rejection."""

from __future__ import annotations

import warnings

import pytest

from repro.baselines import (
    MODEL_BUILDERS,
    BuildSpec,
    build_from_spec,
    build_model,
    register_model,
)
from repro.baselines.gru_seq2seq import GRUForecaster

HISTORY, HORIZON = 12, 12


def spec_for(dataset, **kwargs):
    return BuildSpec(dataset=dataset, history=HISTORY, horizon=HORIZON, **kwargs)


class TestBuildSpec:
    def test_build_from_spec(self, tiny_dataset):
        model = build_from_spec("st-wa", spec_for(tiny_dataset, seed=3))
        assert model.num_parameters() > 0

    def test_case_insensitive(self, tiny_dataset):
        assert build_from_spec("St-Wa", spec_for(tiny_dataset)) is not None

    def test_unknown_model_raises(self, tiny_dataset):
        with pytest.raises(KeyError):
            build_from_spec("nope", spec_for(tiny_dataset))

    def test_overrides_reach_constructor(self, tiny_dataset):
        small = build_from_spec("gru", spec_for(tiny_dataset, overrides={"hidden_size": 4}))
        large = build_from_spec("gru", spec_for(tiny_dataset, overrides={"hidden_size": 32}))
        assert small.num_parameters() < large.num_parameters()

    def test_unknown_override_raises(self, tiny_dataset):
        with pytest.raises(TypeError):
            build_from_spec("gru", spec_for(tiny_dataset, overrides={"wingspan": 3}))

    def test_replace(self, tiny_dataset):
        spec = spec_for(tiny_dataset, seed=0)
        other = spec.replace(seed=5, horizon=24)
        assert other.seed == 5 and other.horizon == 24
        assert other.dataset is spec.dataset and spec.seed == 0

    def test_positional_build_model_still_works(self, tiny_dataset):
        model = build_model("gru", tiny_dataset, HISTORY, HORIZON, seed=0)
        assert model.num_parameters() > 0

    def test_build_model_forwards_overrides(self, tiny_dataset):
        model = build_model("gru", tiny_dataset, HISTORY, HORIZON, overrides={"hidden_size": 4})
        baseline = build_model("gru", tiny_dataset, HISTORY, HORIZON)
        assert model.num_parameters() < baseline.num_parameters()


class TestLegacyRejection:
    def legacy_builder(self, ds, history, horizon, seed):
        return GRUForecaster(history, horizon, hidden_size=4, predictor_hidden=8, seed=seed)

    def test_register_model_rejects_positional_builder(self):
        with pytest.raises(TypeError, match="BuildSpec"):
            register_model("legacy-test", self.legacy_builder, family="rnn")
        assert "legacy-test" not in MODEL_BUILDERS

    def test_error_names_the_builder(self):
        with pytest.raises(TypeError, match="legacy-named"):
            register_model("legacy-named", self.legacy_builder)

    def test_hand_wrapped_legacy_builder_registers(self, tiny_dataset):
        # the documented migration: close over the old callable yourself
        register_model(
            "legacy-wrapped",
            lambda spec: self.legacy_builder(
                spec.dataset, spec.history, spec.horizon, spec.seed
            ),
        )
        try:
            model = build_from_spec("legacy-wrapped", spec_for(tiny_dataset))
            assert model.num_parameters() > 0
        finally:
            MODEL_BUILDERS.pop("legacy-wrapped", None)

    def test_new_style_builder_not_wrapped(self, tiny_dataset):
        def builder(spec):
            return GRUForecaster(spec.history, spec.horizon, hidden_size=4, predictor_hidden=8, seed=spec.seed)

        register_model("new-style-test", builder)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                model = build_from_spec("new-style-test", spec_for(tiny_dataset))
            assert model.num_parameters() > 0
        finally:
            MODEL_BUILDERS.pop("new-style-test", None)
